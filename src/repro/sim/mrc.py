"""Miss-ratio curves: exact (LRU) and sampled (any policy).

Section 6.2.3 of the paper points operators who need per-workload
parameters to "downsized simulations using spatial sampling"
(SHARDS / miniature simulations).  This module provides both halves:

* :func:`lru_mrc` — the exact LRU miss-ratio curve in one pass via
  Mattson's stack algorithm (reuse distances with a Fenwick tree,
  O(N log N)).
* :func:`fifo_mrc` — the exact FIFO / S-FIFO miss-ratio curve in one
  pass via the single-pass multi-size engine
  (:mod:`repro.sim.multisim`), replacing per-size re-simulation.
* :func:`s3fifo_mrc` — the *approximate* S3-FIFO curve from one pass
  over a spatial sample, error-bounded against exact re-simulation.
* :func:`sampled_mrc` — SHARDS-style spatial sampling for *arbitrary*
  policies: keep the keys whose hash falls under the sampling
  threshold, simulate at a proportionally downsized cache, and read
  the full-size miss ratio off the miniature simulation.
"""

from __future__ import annotations

import sys
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.cache.registry import create_policy
from repro.sim.simulator import simulate
from repro.structures.fenwick import FenwickTree
from repro.structures.ghost import fingerprint
from repro.traces.compiled import CompiledTrace, compile_trace


class MissRatioCurve:
    """A (cache size -> miss ratio) curve with step interpolation."""

    def __init__(self, sizes: Sequence[int], miss_ratios: Sequence[float]) -> None:
        if len(sizes) != len(miss_ratios):
            raise ValueError("sizes and miss_ratios must align")
        if not sizes:
            raise ValueError("curve must have at least one point")
        order = sorted(range(len(sizes)), key=lambda i: sizes[i])
        self.sizes = [sizes[i] for i in order]
        self.miss_ratios = [miss_ratios[i] for i in order]

    def at(self, size: int) -> float:
        """Miss ratio at ``size`` (largest measured size <= requested;
        the curve left of the first point is 1.0-ish conservative)."""
        if size < self.sizes[0]:
            # Nothing was measured down there; a cache smaller than the
            # smallest measured one can only miss as much or more, so
            # 1.0 is the only safe (conservative) answer.
            return 1.0
        result = self.miss_ratios[0]
        for s, mr in zip(self.sizes, self.miss_ratios):
            if s <= size:
                result = mr
            else:
                break
        return result

    def is_monotone(self, tolerance: float = 1e-9) -> bool:
        """LRU curves never rise with size (no Belady anomaly)."""
        return all(
            self.miss_ratios[i + 1] <= self.miss_ratios[i] + tolerance
            for i in range(len(self.miss_ratios) - 1)
        )

    def __repr__(self) -> str:
        points = ", ".join(
            f"{s}:{mr:.3f}" for s, mr in zip(self.sizes, self.miss_ratios)
        )
        return f"MissRatioCurve({points})"


def reuse_distances(trace: Sequence[Hashable]) -> List[Optional[int]]:
    """LRU stack distance of every request (None for first accesses).

    The distance is the number of *distinct* keys touched since the
    previous access to the same key — exactly the smallest LRU cache
    size (in objects) at which the request hits.
    """
    n = len(trace)
    if n == 0:
        return []
    tree = FenwickTree(n)
    out: List[Optional[int]] = [None] * n
    if isinstance(trace, CompiledTrace):
        # Dense-id fast path: the last-seen table becomes a flat list
        # indexed by trace id — no hashing anywhere in the pass.
        ids = trace.key_ids()
        last_at = [0] * trace.num_objects  # 0 = never (times are 1-based)
        for i in range(n):
            kid = ids[i]
            time = i + 1
            prev = last_at[kid]
            if prev:
                out[i] = tree.range_sum(prev + 1, time - 1) + 1
                tree.add(prev, -1)
            last_at[kid] = time
            tree.add(time, 1)
        return out
    last_seen: Dict[Hashable, int] = {}
    for i, key in enumerate(trace):
        time = i + 1
        prev = last_seen.get(key)
        if prev is not None:
            # Distinct keys touched in (prev, time): marked last-access
            # slots in that window.
            out[i] = tree.range_sum(prev + 1, time - 1) + 1
            tree.add(prev, -1)
        last_seen[key] = time
        tree.add(time, 1)
    return out


def lru_mrc(
    trace: Sequence[Hashable],
    sizes: Optional[Sequence[int]] = None,
) -> MissRatioCurve:
    """Exact LRU miss-ratio curve via Mattson's algorithm."""
    distances = reuse_distances(trace)
    if not distances:
        raise ValueError("cannot build an MRC from an empty trace")
    max_distance = max((d for d in distances if d is not None), default=1)
    if sizes is None:
        sizes = _default_sizes(max_distance)
    histogram: Dict[int, int] = {}
    infinite = 0
    for d in distances:
        if d is None:
            infinite += 1
        else:
            histogram[d] = histogram.get(d, 0) + 1
    total = len(distances)
    # One cumulative sweep over the sorted histogram: both the sizes
    # and the distances are visited in ascending order, so each
    # distance bucket is added exactly once — O(|sizes| + |distances|)
    # instead of re-summing the histogram per requested size.
    sorted_sizes = sorted(sizes)
    sorted_dists = sorted(histogram)
    num_dists = len(sorted_dists)
    miss_ratios = []
    hits = 0
    di = 0
    for size in sorted_sizes:
        while di < num_dists and sorted_dists[di] <= size:
            hits += histogram[sorted_dists[di]]
            di += 1
        miss_ratios.append((total - hits) / total)
    return MissRatioCurve(sorted_sizes, miss_ratios)


def fifo_mrc(
    trace: Sequence[Hashable],
    sizes: Optional[Sequence[int]] = None,
    policy: str = "fifo",
    engine: str = "auto",
    **policy_kwargs,
) -> MissRatioCurve:
    """Exact FIFO-family miss-ratio curve over the trace.

    The sibling of :func:`lru_mrc` for ``fifo`` (or its bit-identical
    ``fifo-fast`` twin) and ``sfifo``: instead of Mattson's stack
    algorithm — FIFO is not a stack algorithm, Belady's anomaly is its
    counterexample — the curve comes from an exact engine pinned
    bit-identical to per-size :func:`~repro.sim.simulate` runs.  With
    ``sizes`` omitted, a power-of-two ladder up to the trace footprint
    is used, mirroring :func:`lru_mrc`.

    ``engine`` selects how the per-size points are computed, all
    bit-identical:

    * ``"auto"`` / ``"multisim"`` — one single pass over the trace
      answers every size at once (:func:`repro.sim.multisim.multisim`).
      Cheapest when many sizes are requested.
    * ``"vector"`` — one vectorized hit-run pass *per size*
      (:mod:`repro.sim.vector`).  Cheapest for a handful of sizes on
      high-hit-ratio traces, where each pass touches only miss events.
    """
    compiled = compile_trace(trace)
    if len(compiled) == 0:
        raise ValueError("cannot build an MRC from an empty trace")
    if sizes is None:
        sizes = _default_sizes(compiled.num_objects)
    if engine == "vector":
        sorted_sizes = sorted(set(sizes))
        miss_ratios = []
        for size in sorted_sizes:
            cache = create_policy(policy, capacity=size, **policy_kwargs)
            result = simulate(cache, compiled, engine="vector")
            miss_ratios.append(result.miss_ratio)
        return MissRatioCurve(sorted_sizes, miss_ratios)
    if engine not in ("auto", "multisim"):
        raise ValueError(
            "engine must be 'auto', 'multisim', or 'vector', "
            f"got {engine!r}"
        )
    from repro.sim.multisim import multisim

    result = multisim(policy, compiled, sizes, **policy_kwargs)
    return result.to_curve()


def s3fifo_mrc(
    trace: Sequence[Hashable],
    sizes: Sequence[int],
    rate: float = 0.25,
    seed: int = 0,
    ensembles: int = 3,
    engine: str = "sampled",
    **policy_kwargs,
) -> MissRatioCurve:
    """S3-FIFO miss-ratio curve: sampled-approximate or vector-exact.

    ``engine="sampled"`` (default): one pass over a SHARDS spatial
    sample advances a downsized S3-FIFO per requested size
    simultaneously (see
    :func:`repro.sim.multisim.s3fifo_multisim_sampled`).  At the
    defaults the mean absolute error against exact per-size
    re-simulation is bounded by
    :data:`repro.sim.multisim.S3FIFO_MRC_ERROR_BOUND` on the synthetic
    workloads.

    ``engine="vector"``: the *exact* curve, one vectorized hit-run pass
    per size over the full trace (:mod:`repro.sim.vector`) —
    bit-identical to per-size scalar re-simulation, no sampling error.
    ``rate``/``seed``/``ensembles`` are ignored on this path.
    """
    if engine == "vector":
        compiled = compile_trace(trace)
        if len(compiled) == 0:
            raise ValueError("cannot build an MRC from an empty trace")
        sorted_sizes = sorted(set(sizes))
        miss_ratios = []
        for size in sorted_sizes:
            cache = create_policy("s3fifo", capacity=size, **policy_kwargs)
            result = simulate(cache, compiled, engine="vector")
            miss_ratios.append(result.miss_ratio)
        return MissRatioCurve(sorted_sizes, miss_ratios)
    if engine != "sampled":
        raise ValueError(
            f"engine must be 'sampled' or 'vector', got {engine!r}"
        )
    from repro.sim.multisim import s3fifo_multisim_sampled

    result = s3fifo_multisim_sampled(
        trace, sizes, rate=rate, seed=seed, ensembles=ensembles,
        **policy_kwargs,
    )
    return result.to_curve()


def _default_sizes(max_distance: int) -> List[int]:
    sizes = []
    size = 1
    while size < max_distance:
        sizes.append(size)
        size *= 2
    sizes.append(max_distance)
    return sizes


#: Constants of CPython's tuple hash (the xxHash64-based combiner used
#: since 3.8; Objects/tupleobject.c).  :func:`_pair_hash_np` replicates
#: it in uint64 NumPy arithmetic so the SHARDS filter can run
#: vectorized over a compiled trace's id buffer.
_XXPRIME_1 = 11400714785074694791
_XXPRIME_2 = 14029467366897019727
_XXPRIME_5 = 2870177450012600261


def _pair_hash_np(np, a, b):
    """``hash((x, y))`` for lanes ``a``/``b`` (uint64 arrays/scalars).

    A lane is the item's own ``hash()`` reinterpreted as uint64.
    Returns the tuple hash as uint64, with CPython's ``-1 ->
    1546275796`` substitution applied.
    """
    u64 = np.uint64
    p1, p2, p5 = u64(_XXPRIME_1), u64(_XXPRIME_2), u64(_XXPRIME_5)
    with np.errstate(over="ignore"):
        acc = p5 + a * p2
        acc = (acc << u64(31)) | (acc >> u64(33))
        acc = acc * p1
        acc = acc + b * p2
        acc = (acc << u64(31)) | (acc >> u64(33))
        acc = acc * p1
        acc = acc + (u64(2) ^ (p5 ^ u64(3527539)))
    return np.where(
        acc == u64(0xFFFFFFFFFFFFFFFF), u64(1546275796), acc
    )


def _spatial_sample_compiled(
    trace: CompiledTrace, salt: int, threshold: int
) -> Optional[list]:
    """Vectorized SHARDS filter over a compiled trace's id buffer.

    Each *distinct* key is Python-hashed once; the ``(salt, key)``
    tuple combine and the per-request keep decision run as a handful of
    NumPy passes.  Sized traces hash the ``(key, size)`` tuple the
    request yields, exactly like the scalar loop.  Returns ``None``
    when unavailable (no NumPy, or non-64-bit hashes) so the caller
    falls back to the scalar filter — results are pinned identical.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep
        return None
    if sys.hash_info.width != 64:  # pragma: no cover - 64-bit only
        return None
    n = len(trace)
    if n == 0:
        return []
    table = trace.key_table
    mask64 = 0xFFFFFFFFFFFFFFFF
    salt_lane = np.uint64(hash(salt) & mask64)
    key_lanes = np.fromiter(
        ((hash(key) & mask64) for key in table),
        dtype=np.uint64,
        count=len(table),
    )
    ids_np = np.frombuffer(trace.keys, dtype=np.int64)
    ids = trace.key_ids()
    if trace.sizes is None:
        # Unit trace: one fingerprint per distinct key, then a gather.
        fp = _pair_hash_np(np, salt_lane, key_lanes)
        keep_kid = (fp & np.uint64(0xFFFFFF)) < np.uint64(threshold)
        pos = np.flatnonzero(keep_kid[ids_np]).tolist()
        return [table[ids[p]] for p in pos]
    # Sized trace: requests yield (key, size) tuples, so the sampled
    # item is the inner tuple — combine per request.
    sizes = trace.sizes
    sizes_np = np.frombuffer(sizes, dtype=np.int64)
    # hash(int) for the non-negative sizes: n % (2**61 - 1).
    size_lanes = (
        sizes_np % np.int64((1 << 61) - 1)
    ).astype(np.uint64)
    inner = _pair_hash_np(np, key_lanes[ids_np], size_lanes)
    fp = _pair_hash_np(np, salt_lane, inner)
    keep = (fp & np.uint64(0xFFFFFF)) < np.uint64(threshold)
    pos = np.flatnonzero(keep).tolist()
    return [(table[ids[p]], sizes[p]) for p in pos]


def spatial_sample(
    trace: Sequence[Hashable],
    rate: float,
    seed: int = 0,
) -> List[Hashable]:
    """SHARDS spatial sampling: keep keys with hash(key) mod M < M*rate.

    Sampling is per-*key* (every request to a sampled key survives), so
    reuse behaviour within the sample mirrors the full trace.

    Compiled traces are filtered vectorized — each distinct key is
    hashed once and the per-request decision is a NumPy gather over the
    id buffer — producing exactly the same sample as the scalar filter
    (pass :func:`~repro.traces.compiled.compile_trace` output to reuse
    the interned buffers across ensembles).
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if rate == 1.0:
        return list(trace)
    modulus = 1 << 24
    threshold = int(modulus * rate)
    salt = seed * 0x9E3779B9
    if isinstance(trace, CompiledTrace):
        sampled = _spatial_sample_compiled(trace, salt, threshold)
        if sampled is not None:
            return sampled
    return [
        key
        for key in trace
        if (fingerprint((salt, key)) % modulus) < threshold
    ]


def sampled_mrc(
    policy: str,
    trace: Sequence[Hashable],
    sizes: Sequence[int],
    rate: float = 0.1,
    seed: int = 0,
    ensembles: int = 1,
    engine: str = "auto",
    **policy_kwargs,
) -> MissRatioCurve:
    """Downsized-simulation MRC for an arbitrary policy.

    Each requested cache ``size`` is simulated on a spatial sample at
    ``max(1, size * rate)`` capacity; the measured miss ratio estimates
    the full-trace miss ratio at ``size`` (SHARDS' fixed-rate variant).

    A single sample is an unbiased but *noisy* estimator on skewed
    workloads: whether the few hottest keys land in the sample moves
    the whole curve (the hot-key lottery).  ``ensembles > 1`` draws
    several independent samples and aggregates misses over requests
    (ratio of sums), which is how SHARDS-style mini-simulations are
    deployed in practice.

    ``engine`` is forwarded to each miniature simulation (see
    :func:`repro.sim.simulator.simulate_compiled`): ``"auto"`` lets
    FIFO-family policies run on the vector engine, ``"scalar"`` forces
    the classic paths, ``"vector"`` requires vector eligibility.
    """
    if not sizes:
        raise ValueError("sizes must be non-empty")
    if ensembles < 1:
        raise ValueError(f"ensembles must be >= 1, got {ensembles}")
    # Compile the full trace once so every ensemble's spatial filter
    # runs vectorized over the same interned id buffer.
    full = compile_trace(trace)
    samples = []
    for i in range(ensembles):
        sample = spatial_sample(full, rate, seed=seed + i)
        if sample:
            # Compile once per ensemble member: every requested size
            # re-simulates the same sample, and compiled traces give
            # fast policies their batch path for free.
            samples.append(compile_trace(sample, name=f"sample-{seed + i}"))
    if not samples:
        raise ValueError(
            f"sampling rate {rate} produced an empty trace; raise the rate"
        )
    miss_ratios = []
    for size in sorted(sizes):
        scaled = max(1, int(size * rate))
        misses = 0
        requests = 0
        for sample in samples:
            cache = create_policy(policy, capacity=scaled, **policy_kwargs)
            result = simulate(cache, sample, engine=engine)
            misses += result.misses
            requests += result.requests
        miss_ratios.append(misses / requests if requests else 0.0)
    return MissRatioCurve(sorted(sizes), miss_ratios)


def mrc_error(
    estimate: MissRatioCurve, reference: MissRatioCurve
) -> float:
    """Mean absolute error between two curves at the estimate's sizes."""
    errors = [
        abs(estimate.at(size) - reference.at(size))
        for size in estimate.sizes
    ]
    return sum(errors) / len(errors)
