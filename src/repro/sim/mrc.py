"""Miss-ratio curves: exact (LRU) and sampled (any policy).

Section 6.2.3 of the paper points operators who need per-workload
parameters to "downsized simulations using spatial sampling"
(SHARDS / miniature simulations).  This module provides both halves:

* :func:`lru_mrc` — the exact LRU miss-ratio curve in one pass via
  Mattson's stack algorithm (reuse distances with a Fenwick tree,
  O(N log N)).
* :func:`fifo_mrc` — the exact FIFO / S-FIFO miss-ratio curve in one
  pass via the single-pass multi-size engine
  (:mod:`repro.sim.multisim`), replacing per-size re-simulation.
* :func:`s3fifo_mrc` — the *approximate* S3-FIFO curve from one pass
  over a spatial sample, error-bounded against exact re-simulation.
* :func:`sampled_mrc` — SHARDS-style spatial sampling for *arbitrary*
  policies: keep the keys whose hash falls under the sampling
  threshold, simulate at a proportionally downsized cache, and read
  the full-size miss ratio off the miniature simulation.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.cache.registry import create_policy
from repro.sim.simulator import simulate
from repro.structures.fenwick import FenwickTree
from repro.structures.ghost import fingerprint
from repro.traces.compiled import CompiledTrace, compile_trace


class MissRatioCurve:
    """A (cache size -> miss ratio) curve with step interpolation."""

    def __init__(self, sizes: Sequence[int], miss_ratios: Sequence[float]) -> None:
        if len(sizes) != len(miss_ratios):
            raise ValueError("sizes and miss_ratios must align")
        if not sizes:
            raise ValueError("curve must have at least one point")
        order = sorted(range(len(sizes)), key=lambda i: sizes[i])
        self.sizes = [sizes[i] for i in order]
        self.miss_ratios = [miss_ratios[i] for i in order]

    def at(self, size: int) -> float:
        """Miss ratio at ``size`` (largest measured size <= requested;
        the curve left of the first point is 1.0-ish conservative)."""
        if size < self.sizes[0]:
            # Nothing was measured down there; a cache smaller than the
            # smallest measured one can only miss as much or more, so
            # 1.0 is the only safe (conservative) answer.
            return 1.0
        result = self.miss_ratios[0]
        for s, mr in zip(self.sizes, self.miss_ratios):
            if s <= size:
                result = mr
            else:
                break
        return result

    def is_monotone(self, tolerance: float = 1e-9) -> bool:
        """LRU curves never rise with size (no Belady anomaly)."""
        return all(
            self.miss_ratios[i + 1] <= self.miss_ratios[i] + tolerance
            for i in range(len(self.miss_ratios) - 1)
        )

    def __repr__(self) -> str:
        points = ", ".join(
            f"{s}:{mr:.3f}" for s, mr in zip(self.sizes, self.miss_ratios)
        )
        return f"MissRatioCurve({points})"


def reuse_distances(trace: Sequence[Hashable]) -> List[Optional[int]]:
    """LRU stack distance of every request (None for first accesses).

    The distance is the number of *distinct* keys touched since the
    previous access to the same key — exactly the smallest LRU cache
    size (in objects) at which the request hits.
    """
    n = len(trace)
    if n == 0:
        return []
    tree = FenwickTree(n)
    out: List[Optional[int]] = [None] * n
    if isinstance(trace, CompiledTrace):
        # Dense-id fast path: the last-seen table becomes a flat list
        # indexed by trace id — no hashing anywhere in the pass.
        ids = trace.key_ids()
        last_at = [0] * trace.num_objects  # 0 = never (times are 1-based)
        for i in range(n):
            kid = ids[i]
            time = i + 1
            prev = last_at[kid]
            if prev:
                out[i] = tree.range_sum(prev + 1, time - 1) + 1
                tree.add(prev, -1)
            last_at[kid] = time
            tree.add(time, 1)
        return out
    last_seen: Dict[Hashable, int] = {}
    for i, key in enumerate(trace):
        time = i + 1
        prev = last_seen.get(key)
        if prev is not None:
            # Distinct keys touched in (prev, time): marked last-access
            # slots in that window.
            out[i] = tree.range_sum(prev + 1, time - 1) + 1
            tree.add(prev, -1)
        last_seen[key] = time
        tree.add(time, 1)
    return out


def lru_mrc(
    trace: Sequence[Hashable],
    sizes: Optional[Sequence[int]] = None,
) -> MissRatioCurve:
    """Exact LRU miss-ratio curve via Mattson's algorithm."""
    distances = reuse_distances(trace)
    if not distances:
        raise ValueError("cannot build an MRC from an empty trace")
    max_distance = max((d for d in distances if d is not None), default=1)
    if sizes is None:
        sizes = _default_sizes(max_distance)
    histogram: Dict[int, int] = {}
    infinite = 0
    for d in distances:
        if d is None:
            infinite += 1
        else:
            histogram[d] = histogram.get(d, 0) + 1
    total = len(distances)
    # One cumulative sweep over the sorted histogram: both the sizes
    # and the distances are visited in ascending order, so each
    # distance bucket is added exactly once — O(|sizes| + |distances|)
    # instead of re-summing the histogram per requested size.
    sorted_sizes = sorted(sizes)
    sorted_dists = sorted(histogram)
    num_dists = len(sorted_dists)
    miss_ratios = []
    hits = 0
    di = 0
    for size in sorted_sizes:
        while di < num_dists and sorted_dists[di] <= size:
            hits += histogram[sorted_dists[di]]
            di += 1
        miss_ratios.append((total - hits) / total)
    return MissRatioCurve(sorted_sizes, miss_ratios)


def fifo_mrc(
    trace: Sequence[Hashable],
    sizes: Optional[Sequence[int]] = None,
    policy: str = "fifo",
    **policy_kwargs,
) -> MissRatioCurve:
    """Exact FIFO-family miss-ratio curve in one pass over the trace.

    The sibling of :func:`lru_mrc` for ``fifo`` (or its bit-identical
    ``fifo-fast`` twin) and ``sfifo``: instead of Mattson's stack
    algorithm — FIFO is not a stack algorithm, Belady's anomaly is its
    counterexample — the curve comes from the single-pass multi-size
    engine (:func:`repro.sim.multisim.multisim`), which is pinned
    bit-identical to per-size :func:`~repro.sim.simulate` runs.  With
    ``sizes`` omitted, a power-of-two ladder up to the trace footprint
    is used, mirroring :func:`lru_mrc`.
    """
    from repro.sim.multisim import multisim

    compiled = compile_trace(trace)
    if len(compiled) == 0:
        raise ValueError("cannot build an MRC from an empty trace")
    if sizes is None:
        sizes = _default_sizes(compiled.num_objects)
    result = multisim(policy, compiled, sizes, **policy_kwargs)
    return result.to_curve()


def s3fifo_mrc(
    trace: Sequence[Hashable],
    sizes: Sequence[int],
    rate: float = 0.25,
    seed: int = 0,
    ensembles: int = 3,
    **policy_kwargs,
) -> MissRatioCurve:
    """Approximate S3-FIFO miss-ratio curve from one sampled pass.

    One pass over a SHARDS spatial sample advances a downsized S3-FIFO
    per requested size simultaneously (see
    :func:`repro.sim.multisim.s3fifo_multisim_sampled`).  At the
    defaults the mean absolute error against exact per-size
    re-simulation is bounded by
    :data:`repro.sim.multisim.S3FIFO_MRC_ERROR_BOUND` on the synthetic
    workloads.
    """
    from repro.sim.multisim import s3fifo_multisim_sampled

    result = s3fifo_multisim_sampled(
        trace, sizes, rate=rate, seed=seed, ensembles=ensembles,
        **policy_kwargs,
    )
    return result.to_curve()


def _default_sizes(max_distance: int) -> List[int]:
    sizes = []
    size = 1
    while size < max_distance:
        sizes.append(size)
        size *= 2
    sizes.append(max_distance)
    return sizes


def spatial_sample(
    trace: Sequence[Hashable],
    rate: float,
    seed: int = 0,
) -> List[Hashable]:
    """SHARDS spatial sampling: keep keys with hash(key) mod M < M*rate.

    Sampling is per-*key* (every request to a sampled key survives), so
    reuse behaviour within the sample mirrors the full trace.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if rate == 1.0:
        return list(trace)
    modulus = 1 << 24
    threshold = int(modulus * rate)
    salt = seed * 0x9E3779B9
    return [
        key
        for key in trace
        if (fingerprint((salt, key)) % modulus) < threshold
    ]


def sampled_mrc(
    policy: str,
    trace: Sequence[Hashable],
    sizes: Sequence[int],
    rate: float = 0.1,
    seed: int = 0,
    ensembles: int = 1,
    **policy_kwargs,
) -> MissRatioCurve:
    """Downsized-simulation MRC for an arbitrary policy.

    Each requested cache ``size`` is simulated on a spatial sample at
    ``max(1, size * rate)`` capacity; the measured miss ratio estimates
    the full-trace miss ratio at ``size`` (SHARDS' fixed-rate variant).

    A single sample is an unbiased but *noisy* estimator on skewed
    workloads: whether the few hottest keys land in the sample moves
    the whole curve (the hot-key lottery).  ``ensembles > 1`` draws
    several independent samples and aggregates misses over requests
    (ratio of sums), which is how SHARDS-style mini-simulations are
    deployed in practice.
    """
    if not sizes:
        raise ValueError("sizes must be non-empty")
    if ensembles < 1:
        raise ValueError(f"ensembles must be >= 1, got {ensembles}")
    samples = []
    for i in range(ensembles):
        sample = spatial_sample(trace, rate, seed=seed + i)
        if sample:
            # Compile once per ensemble member: every requested size
            # re-simulates the same sample, and compiled traces give
            # fast policies their batch path for free.
            samples.append(compile_trace(sample, name=f"sample-{seed + i}"))
    if not samples:
        raise ValueError(
            f"sampling rate {rate} produced an empty trace; raise the rate"
        )
    miss_ratios = []
    for size in sorted(sizes):
        scaled = max(1, int(size * rate))
        misses = 0
        requests = 0
        for sample in samples:
            cache = create_policy(policy, capacity=scaled, **policy_kwargs)
            result = simulate(cache, sample)
            misses += result.misses
            requests += result.requests
        miss_ratios.append(misses / requests if requests else 0.0)
    return MissRatioCurve(sorted(sizes), miss_ratios)


def mrc_error(
    estimate: MissRatioCurve, reference: MissRatioCurve
) -> float:
    """Mean absolute error between two curves at the estimate's sizes."""
    errors = [
        abs(estimate.at(size) - reference.at(size))
        for size in estimate.sizes
    ]
    return sum(errors) / len(errors)
