"""Trace-driven cache simulation engine.

A miniature libCacheSim: streaming simulation of one policy over one
trace (:func:`simulate`), metric helpers implementing the paper's
miss-ratio-reduction formula (:mod:`repro.sim.metrics`), and a
multiprocessing sweep runner standing in for the authors' distributed
computation platform (:mod:`repro.sim.runner`).

Attributes are resolved lazily (PEP 562): :mod:`repro.cache.base`
imports :mod:`repro.sim.request` while the simulator imports the
policy base class, and laziness breaks that cycle.
"""

from repro.sim.request import Request, as_request

__all__ = [
    "Request",
    "as_request",
    "SimulationResult",
    "simulate",
    "simulate_compiled",
    "windowed_miss_ratios",
    "miss_ratio_reduction",
    "percentile_summary",
    "SweepJob",
    "SweepResult",
    "SweepReport",
    "FailureSummary",
    "run_sweep",
    "shutdown_pool",
    "MultiSizeSweepJob",
    "coalesce_jobs",
    "run_multisize_sweep",
    "MultiSimResult",
    "multisim",
    "fifo_multisim",
    "sfifo_multisim",
    "s3fifo_multisim_sampled",
]

_LAZY = {
    "SimulationResult": "repro.sim.simulator",
    "simulate": "repro.sim.simulator",
    "simulate_compiled": "repro.sim.simulator",
    "windowed_miss_ratios": "repro.sim.simulator",
    "miss_ratio_reduction": "repro.sim.metrics",
    "percentile_summary": "repro.sim.metrics",
    "SweepJob": "repro.sim.runner",
    "SweepResult": "repro.sim.runner",
    "SweepReport": "repro.sim.runner",
    "FailureSummary": "repro.sim.runner",
    "run_sweep": "repro.sim.runner",
    "shutdown_pool": "repro.sim.runner",
    "MultiSizeSweepJob": "repro.sim.runner",
    "coalesce_jobs": "repro.sim.runner",
    "run_multisize_sweep": "repro.sim.runner",
    "MultiSimResult": "repro.sim.multisim",
    "multisim": "repro.sim.multisim",
    "fifo_multisim": "repro.sim.multisim",
    "sfifo_multisim": "repro.sim.multisim",
    "s3fifo_multisim_sampled": "repro.sim.multisim",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
