"""Streaming and compiled trace simulation of a single policy.

Two execution engines share one result type:

* :func:`simulate` — the streaming engine: accepts any iterable of
  requests (bare keys, ``(key, size)`` tuples, or
  :class:`~repro.sim.request.Request` objects) and drives the policy
  one request at a time.
* :func:`simulate_compiled` — the fast-path engine: runs over a
  :class:`~repro.traces.compiled.CompiledTrace` with zero per-request
  allocation.  Array-backed ``*-fast`` policies execute their own
  batched loop over the id buffers; every other policy is driven
  through a single reused Request object.

:func:`simulate` transparently routes compiled traces to the fast
engine, so callers only ever need one entry point.

Both accept ``engine=`` selecting how a compiled trace is executed:

* ``"auto"`` (default) — the vectorized hit-run engine
  (:mod:`repro.sim.vector`) when eligible (FIFO-family policy, fresh
  and listener-free), else the scalar fast path.
* ``"scalar"`` — always the per-request loop (batched for ``*-fast``
  policies).
* ``"vector"`` — the vector engine, raising when ineligible.

The engines are pinned bit-identical on results.  The one observable
difference: the vector engine computes the result *standalone* and
never mutates the policy object — its stats, clock, and resident set
stay untouched.  Callers that inspect or keep driving the policy after
the run should pass ``engine="scalar"``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.cache.base import EvictionPolicy
from repro.sim.request import Request, as_request


class SimulationResult:
    """Outcome of one (policy, trace, cache size) simulation.

    Eviction accounting is split at the warmup boundary:
    ``evictions`` counts only steady-state (post-warmup) evictions of
    *this run*, ``warmup_evictions`` counts evictions during the
    warmup prefix, and :attr:`total_evictions` is their sum.  Evictions
    a pre-used policy performed before the run are never included.
    """

    __slots__ = (
        "policy_name",
        "capacity",
        "requests",
        "misses",
        "bytes_requested",
        "bytes_missed",
        "evictions",
        "warmup_requests",
        "warmup_evictions",
    )

    def __init__(
        self,
        policy_name: str,
        capacity: int,
        requests: int,
        misses: int,
        bytes_requested: int,
        bytes_missed: int,
        evictions: int,
        warmup_requests: int = 0,
        warmup_evictions: int = 0,
    ) -> None:
        self.policy_name = policy_name
        self.capacity = capacity
        self.requests = requests
        self.misses = misses
        self.bytes_requested = bytes_requested
        self.bytes_missed = bytes_missed
        self.evictions = evictions
        self.warmup_requests = warmup_requests
        self.warmup_evictions = warmup_evictions

    @property
    def hits(self) -> int:
        return self.requests - self.misses

    @property
    def total_evictions(self) -> int:
        """All evictions of this run, warmup included."""
        return self.evictions + self.warmup_evictions

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.requests if self.requests else 0.0

    @property
    def byte_miss_ratio(self) -> float:
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_missed / self.bytes_requested

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.policy_name}, capacity={self.capacity}, "
            f"miss_ratio={self.miss_ratio:.4f})"
        )


def _resolve_warmup(
    trace,
    warmup: float,
    warmup_requests: Optional[int],
) -> int:
    """Turn a fractional or absolute warmup spec into a request count."""
    if warmup and warmup_requests is None:
        if not hasattr(trace, "__len__"):
            raise ValueError("fractional warmup requires a sized trace")
        if not 0.0 <= warmup < 1.0:
            raise ValueError(f"warmup must be in [0, 1), got {warmup}")
        warmup_requests = int(len(trace) * warmup)
    return warmup_requests or 0


def simulate(
    policy: EvictionPolicy,
    trace: Iterable[Union[Request, tuple, str, int]],
    warmup: float = 0.0,
    warmup_requests: Optional[int] = None,
    engine: str = "auto",
) -> SimulationResult:
    """Run ``policy`` over ``trace`` and return the measured miss ratios.

    ``trace`` may yield :class:`Request` objects, bare keys,
    ``(key, size)`` tuples, or be a
    :class:`~repro.traces.compiled.CompiledTrace` (which is routed to
    the allocation-free :func:`simulate_compiled` engine).  With
    ``warmup`` (fraction of the trace) or ``warmup_requests`` set, the
    warmup prefix is excluded from the reported hit/miss/byte counts,
    the standard methodology for steady-state miss ratios; fractional
    warmup requires a sized trace (list/tuple/compiled).

    Eviction semantics: ``result.evictions`` counts steady-state
    (post-warmup) evictions only; warmup evictions are reported
    separately as ``result.warmup_evictions`` (see
    :class:`SimulationResult`).
    """
    from repro.traces.compiled import CompiledTrace

    if isinstance(trace, CompiledTrace):
        return simulate_compiled(
            policy, trace, warmup=warmup, warmup_requests=warmup_requests,
            engine=engine,
        )

    warmup_requests = _resolve_warmup(trace, warmup, warmup_requests)

    requests = 0
    misses = 0
    bytes_requested = 0
    bytes_missed = 0
    seen = 0
    evictions_before = policy.stats.evictions
    evictions_at_warmup = evictions_before
    for item in trace:
        req = as_request(item)
        hit = policy.request(req)
        seen += 1
        if seen <= warmup_requests:
            if seen == warmup_requests:
                evictions_at_warmup = policy.stats.evictions
            continue
        requests += 1
        bytes_requested += req.size
        if not hit:
            misses += 1
            bytes_missed += req.size
    return SimulationResult(
        policy_name=policy.name,
        capacity=policy.capacity,
        requests=requests,
        misses=misses,
        bytes_requested=bytes_requested,
        bytes_missed=bytes_missed,
        evictions=policy.stats.evictions - evictions_at_warmup,
        warmup_requests=warmup_requests,
        warmup_evictions=evictions_at_warmup - evictions_before,
    )


def _has_fast_path(policy: EvictionPolicy, trace) -> bool:
    run = getattr(policy, "run_compiled", None)
    if run is None:
        return False
    can = getattr(policy, "can_run_compiled", None)
    return bool(can(trace)) if can is not None else True


def simulate_compiled(
    policy: EvictionPolicy,
    trace,
    warmup: float = 0.0,
    warmup_requests: Optional[int] = None,
    engine: str = "auto",
) -> SimulationResult:
    """Run ``policy`` over a compiled trace with no per-request allocation.

    ``engine="auto"`` routes FIFO-family policies (fresh, no
    listeners) to the vectorized hit-run engine
    (:func:`repro.sim.vector.vector_simulate`), which consumes hit runs
    with dense-array lookups instead of per-request Python; the result
    is bit-identical but the policy object is left untouched.
    ``engine="vector"`` forces that path (raising when ineligible);
    ``engine="scalar"`` forces the classic path below.

    On the scalar path, policies exposing the fast-path batch protocol
    (``run_compiled(trace, start, stop)`` — the ``*-fast`` registry
    entries) execute an inlined loop directly over the trace's integer
    id buffers.  Every other policy is driven through a single reused
    :class:`Request` object, which already removes the per-request
    allocation and dispatch cost of the streaming engine.

    Warmup and eviction-accounting semantics match :func:`simulate`.
    """
    if engine not in ("auto", "scalar", "vector"):
        raise ValueError(
            f"engine must be 'auto', 'scalar', or 'vector', got {engine!r}"
        )
    if engine != "scalar":
        from repro.sim.vector import vector_eligible, vector_simulate

        if engine == "vector" or vector_eligible(policy, trace):
            return vector_simulate(
                policy, trace, warmup=warmup, warmup_requests=warmup_requests
            )

    warmup_requests = _resolve_warmup(trace, warmup, warmup_requests)
    n = len(trace)
    warmup_requests = min(warmup_requests, n)
    evictions_before = policy.stats.evictions

    if _has_fast_path(policy, trace):
        if warmup_requests:
            policy.run_compiled(trace, 0, warmup_requests)
        evictions_at_warmup = policy.stats.evictions
        requests, misses, bytes_requested, bytes_missed = policy.run_compiled(
            trace, warmup_requests, n
        )
        return SimulationResult(
            policy_name=policy.name,
            capacity=policy.capacity,
            requests=requests,
            misses=misses,
            bytes_requested=bytes_requested,
            bytes_missed=bytes_missed,
            evictions=policy.stats.evictions - evictions_at_warmup,
            warmup_requests=warmup_requests,
            warmup_evictions=evictions_at_warmup - evictions_before,
        )

    requests = 0
    misses = 0
    bytes_requested = 0
    bytes_missed = 0
    seen = 0
    evictions_at_warmup = evictions_before
    for req in trace.iter_requests(reuse=True):
        hit = policy.request(req)
        seen += 1
        if seen <= warmup_requests:
            if seen == warmup_requests:
                evictions_at_warmup = policy.stats.evictions
            continue
        requests += 1
        bytes_requested += req.size
        if not hit:
            misses += 1
            bytes_missed += req.size
    return SimulationResult(
        policy_name=policy.name,
        capacity=policy.capacity,
        requests=requests,
        misses=misses,
        bytes_requested=bytes_requested,
        bytes_missed=bytes_missed,
        evictions=policy.stats.evictions - evictions_at_warmup,
        warmup_requests=warmup_requests,
        warmup_evictions=evictions_at_warmup - evictions_before,
    )


def windowed_miss_ratios(
    policy: EvictionPolicy,
    trace: Iterable[Union[Request, tuple, str, int]],
    window: int,
) -> List[float]:
    """Miss ratio per consecutive window of ``window`` requests.

    Useful for watching warmup converge and for spotting phase changes
    (scans show up as miss-ratio spikes).  The trailing partial window
    is included when non-empty.  Compiled traces use the fast-path
    engine: each window is one batched ``run_compiled`` call for fast
    policies, or a reused-Request sweep otherwise.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    from repro.traces.compiled import CompiledTrace

    if isinstance(trace, CompiledTrace):
        return _windowed_compiled(policy, trace, window)
    ratios: List[float] = []
    misses = 0
    count = 0
    for item in trace:
        req = as_request(item)
        if not policy.request(req):
            misses += 1
        count += 1
        if count == window:
            ratios.append(misses / count)
            misses = 0
            count = 0
    if count:
        ratios.append(misses / count)
    return ratios


def _windowed_compiled(
    policy: EvictionPolicy, trace, window: int
) -> List[float]:
    n = len(trace)
    ratios: List[float] = []
    if _has_fast_path(policy, trace):
        for start in range(0, n, window):
            stop = min(start + window, n)
            requests, misses, _, _ = policy.run_compiled(trace, start, stop)
            ratios.append(misses / requests if requests else 0.0)
        return ratios
    misses = 0
    count = 0
    for req in trace.iter_requests(reuse=True):
        if not policy.request(req):
            misses += 1
        count += 1
        if count == window:
            ratios.append(misses / count)
            misses = 0
            count = 0
    if count:
        ratios.append(misses / count)
    return ratios
