"""Streaming trace simulation of a single policy."""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.cache.base import EvictionPolicy
from repro.sim.request import Request


class SimulationResult:
    """Outcome of one (policy, trace, cache size) simulation."""

    __slots__ = (
        "policy_name",
        "capacity",
        "requests",
        "misses",
        "bytes_requested",
        "bytes_missed",
        "evictions",
        "warmup_requests",
    )

    def __init__(
        self,
        policy_name: str,
        capacity: int,
        requests: int,
        misses: int,
        bytes_requested: int,
        bytes_missed: int,
        evictions: int,
        warmup_requests: int = 0,
    ) -> None:
        self.policy_name = policy_name
        self.capacity = capacity
        self.requests = requests
        self.misses = misses
        self.bytes_requested = bytes_requested
        self.bytes_missed = bytes_missed
        self.evictions = evictions
        self.warmup_requests = warmup_requests

    @property
    def hits(self) -> int:
        return self.requests - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.requests if self.requests else 0.0

    @property
    def byte_miss_ratio(self) -> float:
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_missed / self.bytes_requested

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.policy_name}, capacity={self.capacity}, "
            f"miss_ratio={self.miss_ratio:.4f})"
        )


def simulate(
    policy: EvictionPolicy,
    trace: Iterable[Union[Request, tuple, str, int]],
    warmup: float = 0.0,
    warmup_requests: Optional[int] = None,
) -> SimulationResult:
    """Run ``policy`` over ``trace`` and return the measured miss ratios.

    ``trace`` may yield :class:`Request` objects, bare keys, or
    ``(key, size)`` tuples.  With ``warmup`` (fraction of the trace) or
    ``warmup_requests`` set, hits/misses during the warmup prefix are
    excluded from the reported counts, the standard methodology for
    steady-state miss ratios.  Fractional warmup requires a sized
    trace (list/tuple).
    """

    if warmup and warmup_requests is None:
        if not hasattr(trace, "__len__"):
            raise ValueError("fractional warmup requires a sized trace")
        if not 0.0 <= warmup < 1.0:
            raise ValueError(f"warmup must be in [0, 1), got {warmup}")
        warmup_requests = int(len(trace) * warmup)  # type: ignore[arg-type]
    warmup_requests = warmup_requests or 0

    requests = 0
    misses = 0
    bytes_requested = 0
    bytes_missed = 0
    seen = 0
    for item in trace:
        if isinstance(item, Request):
            req = item
        elif isinstance(item, tuple):
            req = Request(item[0], size=item[1])
        else:
            req = Request(item)
        hit = policy.request(req)
        seen += 1
        if seen <= warmup_requests:
            continue
        requests += 1
        bytes_requested += req.size
        if not hit:
            misses += 1
            bytes_missed += req.size
    return SimulationResult(
        policy_name=policy.name,
        capacity=policy.capacity,
        requests=requests,
        misses=misses,
        bytes_requested=bytes_requested,
        bytes_missed=bytes_missed,
        evictions=policy.stats.evictions,
        warmup_requests=warmup_requests,
    )


def windowed_miss_ratios(
    policy: EvictionPolicy,
    trace: Iterable[Union[Request, tuple, str, int]],
    window: int,
) -> List[float]:
    """Miss ratio per consecutive window of ``window`` requests.

    Useful for watching warmup converge and for spotting phase changes
    (scans show up as miss-ratio spikes).  The trailing partial window
    is included when non-empty.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    ratios: List[float] = []
    misses = 0
    count = 0
    for item in trace:
        if isinstance(item, Request):
            req = item
        elif isinstance(item, tuple):
            req = Request(item[0], size=item[1])
        else:
            req = Request(item)
        if not policy.request(req):
            misses += 1
        count += 1
        if count == window:
            ratios.append(misses / count)
            misses = 0
            count = 0
    if count:
        ratios.append(misses / count)
    return ratios
