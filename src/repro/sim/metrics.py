"""Metric helpers, including the paper's miss-ratio-reduction formula.

Section 5.1.2: because miss ratios span a wide range across traces,
results are presented as the reduction relative to FIFO,

    (MR_fifo - MR_algo) / MR_fifo            when the algorithm wins,
    -(MR_algo - MR_fifo) / MR_algo           when FIFO wins,

which bounds the value to [-1, 1] and avoids outliers dominating
means.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def miss_ratio_reduction(mr_fifo: float, mr_algo: float) -> float:
    """The paper's symmetric, bounded miss-ratio-reduction metric."""
    if not 0.0 <= mr_fifo <= 1.0:
        raise ValueError(f"mr_fifo must be in [0, 1], got {mr_fifo}")
    if not 0.0 <= mr_algo <= 1.0:
        raise ValueError(f"mr_algo must be in [0, 1], got {mr_algo}")
    if mr_fifo == mr_algo:
        return 0.0
    if mr_algo < mr_fifo:
        return (mr_fifo - mr_algo) / mr_fifo if mr_fifo > 0 else 0.0
    return -(mr_algo - mr_fifo) / mr_algo if mr_algo > 0 else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy 'linear' method), q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def percentile_summary(
    values: Iterable[float],
    qs: Sequence[float] = (10, 25, 50, 75, 90),
) -> Dict[str, float]:
    """Mean plus the requested percentiles — one Fig. 6 box/whisker."""
    data: List[float] = list(values)
    if not data:
        raise ValueError("percentile_summary of empty sequence")
    summary = {"mean": sum(data) / len(data)}
    for q in qs:
        label = f"p{int(q) if float(q).is_integer() else q}"
        summary[label] = percentile(data, q)
    return summary


def mean(values: Iterable[float]) -> float:
    data = list(values)
    if not data:
        raise ValueError("mean of empty sequence")
    return sum(data) / len(data)
