"""Parallel simulation sweeps.

The paper ran ~100 passes over 6594 traces on a distributed
fault-tolerant platform.  This module is the single-machine stand-in:
a multiprocessing pool that executes (trace, policy, cache size) jobs,
regenerating synthetic traces inside the workers so no bulk data is
pickled, and tolerating individual job failures (a failed job returns
an error result instead of aborting the sweep).
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import pickle
import resource
import sys
import time
import traceback
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.cache.registry import create_policy
from repro.resilience.retry import RetryPolicy
from repro.sim.simulator import simulate

TraceFactory = Callable[..., Sequence]

logger = logging.getLogger(__name__)

#: Per-worker compiled traces kept alive between jobs (see
#: :func:`_materialize_trace`).  Sweeps fan the same trace out over
#: many (policy, size) pairs; workers that keep the compiled form
#: regenerate and re-compile it zero times instead of once per job.
_TRACE_CACHE_MAX = 8


def _peak_rss_kb() -> int:
    """Process high-water RSS in KiB.

    ``ru_maxrss`` is KiB on Linux but *bytes* on macOS and the BSDs
    (see getrusage(2) on each), so normalize by platform.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin" or sys.platform.startswith(
        ("freebsd", "netbsd", "openbsd")
    ):
        return rss // 1024
    return rss


class SweepJob:
    """One simulation: a trace factory, a policy, and a cache size."""

    __slots__ = (
        "trace_name",
        "trace_factory",
        "trace_kwargs",
        "policy",
        "policy_kwargs",
        "cache_size",
        "tags",
        "engine",
    )

    def __init__(
        self,
        trace_name: str,
        trace_factory: TraceFactory,
        trace_kwargs: Dict[str, Any],
        policy: str,
        cache_size: int,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        tags: Optional[Dict[str, Any]] = None,
        engine: str = "auto",
    ) -> None:
        self.trace_name = trace_name
        self.trace_factory = trace_factory
        self.trace_kwargs = dict(trace_kwargs)
        self.policy = policy
        self.policy_kwargs = dict(policy_kwargs or {})
        self.cache_size = cache_size
        self.tags = dict(tags or {})
        #: Compiled-trace execution engine (see
        #: :func:`repro.sim.simulator.simulate_compiled`): ``"auto"``,
        #: ``"scalar"``, or ``"vector"``.
        self.engine = engine

    def __repr__(self) -> str:
        return (
            f"SweepJob({self.trace_name}, {self.policy}, "
            f"size={self.cache_size})"
        )


class SweepResult:
    """Outcome of one :class:`SweepJob` (or its failure)."""

    __slots__ = (
        "trace_name",
        "policy",
        "cache_size",
        "miss_ratio",
        "byte_miss_ratio",
        "requests",
        "wall_time",
        "peak_rss_kb",
        "tags",
        "error",
    )

    def __init__(
        self,
        trace_name: str,
        policy: str,
        cache_size: int,
        miss_ratio: float = 0.0,
        byte_miss_ratio: float = 0.0,
        requests: int = 0,
        wall_time: float = 0.0,
        peak_rss_kb: int = 0,
        tags: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        self.trace_name = trace_name
        self.policy = policy
        self.cache_size = cache_size
        self.miss_ratio = miss_ratio
        self.byte_miss_ratio = byte_miss_ratio
        self.requests = requests
        #: Seconds spent in trace materialization + simulation for this
        #: job (queue waits excluded).
        self.wall_time = wall_time
        #: High-water RSS of the executing process when the job ended,
        #: in KiB.  A process-lifetime maximum, so within one worker it
        #: is monotone across jobs — read it as "the sweep fit in this
        #: much memory", not as a per-job footprint.
        self.peak_rss_kb = peak_rss_kb
        self.tags = dict(tags or {})
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        if self.error:
            return f"SweepResult({self.trace_name}, {self.policy}, ERROR)"
        return (
            f"SweepResult({self.trace_name}, {self.policy}, "
            f"miss_ratio={self.miss_ratio:.4f})"
        )


class FailureSummary:
    """One aggregated failure class inside a :class:`SweepReport`."""

    __slots__ = ("exception", "count", "first_traceback", "first_job")

    def __init__(
        self, exception: str, count: int, first_traceback: str, first_job: str
    ) -> None:
        self.exception = exception
        self.count = count
        self.first_traceback = first_traceback
        self.first_job = first_job

    def __repr__(self) -> str:
        return f"FailureSummary({self.exception}, count={self.count})"


def _exception_name(trace_text: str) -> str:
    """The exception class named on the last line of a traceback."""
    for line in reversed(trace_text.strip().splitlines()):
        line = line.strip()
        if line and not line.startswith(("File ", "Traceback", "^")):
            return line.split(":", 1)[0].strip() or "Exception"
    return "Exception"


class SweepReport(List[SweepResult]):
    """The results of one sweep, plus an aggregated failure summary.

    A plain list of :class:`SweepResult` (all existing callers keep
    working), with the failed jobs surfaced instead of silently lost.
    """

    @property
    def ok_results(self) -> List[SweepResult]:
        return [r for r in self if r.ok]

    @property
    def failed(self) -> List[SweepResult]:
        return [r for r in self if not r.ok]

    @property
    def failures(self) -> List[FailureSummary]:
        """Failed jobs grouped by exception class, first traceback kept."""
        groups: Dict[str, FailureSummary] = {}
        for result in self:
            if result.ok:
                continue
            name = _exception_name(result.error)
            summary = groups.get(name)
            if summary is None:
                groups[name] = FailureSummary(
                    exception=name,
                    count=1,
                    first_traceback=result.error,
                    first_job=(
                        f"{result.trace_name}/{result.policy}"
                        f"/{result.cache_size}"
                    ),
                )
            else:
                summary.count += 1
        return sorted(groups.values(), key=lambda s: -s.count)

    def log_failures(self) -> None:
        """One-line warning per failure class (no-op on a clean sweep)."""
        for summary in self.failures:
            logger.warning(
                "sweep lost %d job(s) to %s (first: %s)",
                summary.count,
                summary.exception,
                summary.first_job,
            )


class SweepTimeout(Exception):
    """A sweep job exceeded its per-attempt timeout."""


_trace_cache: Dict[Any, Any] = {}


def _materialize_trace(job: SweepJob):
    """The job's trace, compiled and cached in this process.

    The cache key is ``(trace_name, sorted trace_kwargs)``; jobs whose
    kwargs are unhashable (lists, dicts) fall back to regenerating the
    trace, as does anything :func:`compile_trace` cannot consume.  The
    cache is process-local: each pool worker warms its own, which is
    exactly the sharing the fork-based pool gives us for free.
    """
    try:
        key = (job.trace_name, tuple(sorted(job.trace_kwargs.items())))
        cached = _trace_cache.get(key)
    except TypeError:
        key = None
        cached = None
    if cached is not None:
        return cached
    trace = job.trace_factory(**job.trace_kwargs)
    try:
        from repro.traces.compiled import CompiledTrace, compile_trace

        if not isinstance(trace, CompiledTrace):
            trace = compile_trace(trace, name=job.trace_name)
        trace.key_ids()  # materialize the hot list view up front
    except Exception:  # noqa: BLE001 - exotic traces simulate uncompiled
        # compile_trace may have part-consumed an iterator trace;
        # regenerate a fresh one and run it uncompiled, uncached.
        return job.trace_factory(**job.trace_kwargs)
    if key is not None:
        if len(_trace_cache) >= _TRACE_CACHE_MAX:
            _trace_cache.pop(next(iter(_trace_cache)))
        _trace_cache[key] = trace
    return trace


def execute_job(job: SweepJob) -> SweepResult:
    """Run one job; never raises — failures land in ``result.error``."""
    start = time.perf_counter()
    try:
        trace = _materialize_trace(job)
        policy = create_policy(
            job.policy, capacity=job.cache_size, **job.policy_kwargs
        )
        result = simulate(policy, trace, engine=job.engine)
        return SweepResult(
            trace_name=job.trace_name,
            policy=job.policy,
            cache_size=job.cache_size,
            miss_ratio=result.miss_ratio,
            byte_miss_ratio=result.byte_miss_ratio,
            requests=result.requests,
            wall_time=time.perf_counter() - start,
            peak_rss_kb=_peak_rss_kb(),
            tags=job.tags,
        )
    except Exception:  # noqa: BLE001 - fault tolerance is the point
        return SweepResult(
            trace_name=job.trace_name,
            policy=job.policy,
            cache_size=job.cache_size,
            wall_time=time.perf_counter() - start,
            peak_rss_kb=_peak_rss_kb(),
            tags=job.tags,
            error=traceback.format_exc(),
        )


def _execute_indexed(item):
    """Pool worker shim: ``(idx, job) -> (idx, result)``."""
    idx, job = item
    return idx, execute_job(job)


class MultiSizeSweepJob:
    """N same-trace, same-policy :class:`SweepJob`\\ s collapsed into
    one single-pass multi-size simulation.

    Only the FIFO family qualifies (see
    :data:`repro.sim.multisim.MULTISIM_POLICIES`); build these with
    :func:`coalesce_jobs` rather than by hand so the grouping rules
    stay in one place.  ``cache_sizes`` and ``tags_per_size`` align
    with the original jobs, duplicates included — the single pass
    simulates each distinct size once and fans the result back out.
    """

    __slots__ = (
        "trace_name",
        "trace_factory",
        "trace_kwargs",
        "policy",
        "policy_kwargs",
        "cache_sizes",
        "tags_per_size",
    )

    def __init__(
        self,
        trace_name: str,
        trace_factory: TraceFactory,
        trace_kwargs: Dict[str, Any],
        policy: str,
        cache_sizes: Sequence[int],
        policy_kwargs: Optional[Dict[str, Any]] = None,
        tags_per_size: Optional[Sequence[Dict[str, Any]]] = None,
    ) -> None:
        self.trace_name = trace_name
        self.trace_factory = trace_factory
        self.trace_kwargs = dict(trace_kwargs)
        self.policy = policy
        self.policy_kwargs = dict(policy_kwargs or {})
        self.cache_sizes = list(cache_sizes)
        if tags_per_size is None:
            tags_per_size = [{} for _ in self.cache_sizes]
        if len(tags_per_size) != len(self.cache_sizes):
            raise ValueError("tags_per_size must align with cache_sizes")
        self.tags_per_size = [dict(t) for t in tags_per_size]

    def __repr__(self) -> str:
        return (
            f"MultiSizeSweepJob({self.trace_name}, {self.policy}, "
            f"sizes={self.cache_sizes})"
        )


def _group_key(job: SweepJob):
    """Coalescing identity of a job (None when kwargs are unhashable)."""
    try:
        return (
            job.trace_name,
            tuple(sorted(job.trace_kwargs.items())),
            job.policy,
            tuple(sorted(job.policy_kwargs.items())),
        )
    except TypeError:
        return None


def coalesce_jobs(jobs: Sequence[SweepJob]):
    """Split jobs into multi-size groups and uncoalescible leftovers.

    Returns ``(groups, singles)``: ``groups`` is a list of
    ``(original_indices, MultiSizeSweepJob)`` pairs — FIFO-family jobs
    sharing trace, policy, and kwargs, two or more of them — and
    ``singles`` the remaining ``(index, job)`` pairs in input order.
    Each group replaces N per-size passes with one.
    """
    from repro.sim.multisim import MULTISIM_POLICIES

    buckets: Dict[Any, List[int]] = {}
    singles: List[Any] = []
    for idx, job in enumerate(jobs):
        # Engine-pinned jobs stay singles: coalescing runs the
        # multisim engine, which would override an explicit choice.
        coalescible = (
            job.policy in MULTISIM_POLICIES
            and getattr(job, "engine", "auto") == "auto"
        )
        key = _group_key(job) if coalescible else None
        if key is None:
            singles.append((idx, job))
            continue
        buckets.setdefault(key, []).append(idx)
    groups = []
    for indices in buckets.values():
        if len(indices) < 2:
            singles.extend((idx, jobs[idx]) for idx in indices)
            continue
        first = jobs[indices[0]]
        groups.append(
            (
                list(indices),
                MultiSizeSweepJob(
                    trace_name=first.trace_name,
                    trace_factory=first.trace_factory,
                    trace_kwargs=first.trace_kwargs,
                    policy=first.policy,
                    cache_sizes=[jobs[i].cache_size for i in indices],
                    policy_kwargs=first.policy_kwargs,
                    tags_per_size=[jobs[i].tags for i in indices],
                ),
            )
        )
    singles.sort(key=lambda pair: pair[0])
    return groups, singles


def execute_multi_job(mjob: MultiSizeSweepJob) -> List[SweepResult]:
    """Run one multi-size job; returns a result per requested size.

    One single-pass simulation answers every size; each result carries
    its original job's tags plus ``coalesced`` (the number of distinct
    sizes the shared pass computed).  ``wall_time`` is the *shared*
    pass time, recorded identically on every result — sum them per
    pass, not per row.  Failures mirror :func:`execute_job`: the whole
    group lands in per-size error results instead of raising.
    """
    from repro.sim.multisim import multisim

    start = time.perf_counter()
    try:
        trace = _materialize_trace(mjob)
        result = multisim(
            mjob.policy, trace, mjob.cache_sizes, **mjob.policy_kwargs
        )
        wall = time.perf_counter() - start
        rss = _peak_rss_kb()
        out = []
        for size, tags in zip(mjob.cache_sizes, mjob.tags_per_size):
            per_size = result.result_for(size)
            out.append(
                SweepResult(
                    trace_name=mjob.trace_name,
                    policy=mjob.policy,
                    cache_size=size,
                    miss_ratio=per_size.miss_ratio,
                    byte_miss_ratio=per_size.byte_miss_ratio,
                    requests=per_size.requests,
                    wall_time=wall,
                    peak_rss_kb=rss,
                    tags={**tags, "coalesced": len(result.sizes)},
                )
            )
        return out
    except Exception:  # noqa: BLE001 - fault tolerance, as execute_job
        error = traceback.format_exc()
        wall = time.perf_counter() - start
        rss = _peak_rss_kb()
        return [
            SweepResult(
                trace_name=mjob.trace_name,
                policy=mjob.policy,
                cache_size=size,
                wall_time=wall,
                peak_rss_kb=rss,
                tags=dict(tags),
                error=error,
            )
            for size, tags in zip(mjob.cache_sizes, mjob.tags_per_size)
        ]


def _execute_multi_indexed(item):
    """Pool worker shim: ``(indices, mjob) -> (indices, results)``."""
    indices, mjob = item
    return indices, execute_multi_job(mjob)


def _timeout_result(
    job: SweepJob, timeout: float, attempt: int
) -> SweepResult:
    return SweepResult(
        trace_name=job.trace_name,
        policy=job.policy,
        cache_size=job.cache_size,
        tags=job.tags,
        error=(
            f"SweepTimeout: job exceeded {timeout}s "
            f"(attempt {attempt})\n"
        ),
    )


_pool: Optional[multiprocessing.pool.Pool] = None
_pool_size = 0


def _get_pool(processes: int) -> multiprocessing.pool.Pool:
    """The shared worker pool, (re)created on first use or resize.

    Keeping the pool alive across :func:`run_sweep` calls preserves the
    workers' trace caches, so iterative workflows (MRC sweeps, repeated
    experiments over the same traces) skip both the fork cost and the
    per-worker trace regeneration after the first sweep.
    """
    global _pool, _pool_size
    if _pool is not None and _pool_size != processes:
        shutdown_pool()
    if _pool is None:
        _pool = multiprocessing.Pool(processes=processes)
        _pool_size = processes
    return _pool


def shutdown_pool() -> None:
    """Terminate the shared pool (and its warm caches), if any.

    Called automatically at interpreter exit; call it explicitly to
    reclaim worker memory between sweeps or after changing trace
    factories in place.
    """
    global _pool, _pool_size
    if _pool is not None:
        _pool.terminate()
        _pool.join()
        _pool = None
        _pool_size = 0


atexit.register(shutdown_pool)


def _sweep_chunksize(num_jobs: int, processes: int) -> int:
    """IPC batching for :meth:`imap_unordered`.

    Aim for ~4 chunks per worker so stragglers still rebalance, floor 1
    so tiny sweeps parallelize, cap 64 so one chunk never serializes a
    large sweep's tail.
    """
    return max(1, min(64, num_jobs // (processes * 4) or 1))


def _pool_round(pool, pending, results, timeout, attempt):
    """Submit one round of jobs; returns the (index, job) pairs that
    failed or timed out and are eligible for another attempt."""
    submitted = [
        (idx, job, pool.apply_async(execute_job, (job,)))
        for idx, job in pending
    ]
    failed = []
    for idx, job, handle in submitted:
        try:
            result = handle.get(timeout)
        except multiprocessing.TimeoutError:
            # The worker may still be burning CPU; run_sweep discards
            # the shared pool after a sweep that saw timeouts.
            result = _timeout_result(job, timeout, attempt)
        result.tags["attempts"] = attempt
        results[idx] = result
        if not result.ok:
            failed.append((idx, job))
    return failed


def _record_sweep_metrics(registry, report: SweepReport) -> None:
    """Publish a finished sweep into a metrics registry.

    Recording happens entirely in the parent process from the results
    it already holds — worker processes never see the registry, so no
    IPC or shared memory is involved.
    """
    wall = registry.histogram(
        "repro_sweep_job_wall_seconds",
        "Per-job wall time as measured in the worker.",
        buckets=(0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60, 300),
    )
    retries = registry.counter(
        "repro_sweep_retries", "Job attempts beyond each job's first."
    )
    for result in report:
        registry.counter(
            "repro_sweep_jobs", "Sweep jobs by final status.",
            {"status": "ok" if result.ok else "failed"},
        ).inc()
        attempts = int(result.tags.get("attempts", 1))
        if attempts > 1:
            retries.inc(attempts - 1)
        if result.ok:
            wall.observe(result.wall_time)


def run_sweep(
    jobs: Iterable[SweepJob],
    processes: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    metrics=None,
) -> SweepReport:
    """Execute jobs, in parallel when ``processes`` allows it.

    ``processes=None`` uses one worker per CPU (capped at the job
    count); ``processes<=1`` runs sequentially in-process, which is
    also the fallback when the platform cannot fork.

    Parallel sweeps run on a persistent worker pool that survives
    across calls (see :func:`shutdown_pool`), so repeated sweeps reuse
    both the forked workers and their per-worker compiled-trace
    caches.  The common case — no timeout, single attempt — dispatches
    via ``imap_unordered`` with a tuned chunksize so small jobs don't
    pay one IPC round-trip each.

    With ``retry`` set, failed (or timed-out) jobs are re-executed up
    to ``retry.max_attempts`` times; backoff delays are not slept —
    sweeps are batch work, the retry policy only bounds the attempt
    count and timeout.  ``timeout`` (seconds per job attempt, parallel
    mode only — a stuck in-process job cannot be preempted) defaults to
    ``retry.attempt_timeout``.  Each result records its attempt count
    in ``tags["attempts"]``, and the returned :class:`SweepReport`
    aggregates whatever still failed.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) records
    job counts by status, retry counts, and a per-job wall-time
    histogram — all from the parent process as results arrive.
    """
    job_list = list(jobs)
    report = SweepReport()
    if not job_list:
        return report
    if timeout is None and retry is not None:
        timeout = retry.attempt_timeout
    max_attempts = retry.max_attempts if retry is not None else 1
    if processes is None:
        processes = min(len(job_list), multiprocessing.cpu_count())

    results: Dict[int, SweepResult] = {}
    pending = list(enumerate(job_list))
    if processes > 1 and len(job_list) > 1:
        try:
            pool = _get_pool(processes)
            if timeout is None and max_attempts == 1:
                chunksize = _sweep_chunksize(len(job_list), processes)
                logger.debug(
                    "sweep dispatch: %d jobs on %d workers, "
                    "chunksize=%d (~%d chunks)",
                    len(job_list),
                    processes,
                    chunksize,
                    -(-len(job_list) // chunksize),
                )
                for idx, result in pool.imap_unordered(
                    _execute_indexed, pending, chunksize=chunksize
                ):
                    result.tags["attempts"] = 1
                    results[idx] = result
                pending = []
            else:
                for attempt in range(1, max_attempts + 1):
                    if not pending:
                        break
                    pending = _pool_round(
                        pool, pending, results, timeout, attempt
                    )
                if any(not r.ok and "SweepTimeout" in (r.error or "")
                       for r in results.values()):
                    # Timed-out workers may still be burning CPU on the
                    # stuck jobs; discard the pool rather than queue the
                    # next sweep behind stragglers.
                    shutdown_pool()
        except (OSError, pickle.PicklingError, AttributeError):
            # No fork available, or a non-module-level trace factory was
            # passed: degrade gracefully to sequential execution.  The
            # pool may hold poisoned queues after a pickling error, so
            # rebuild it next time.
            shutdown_pool()
            results.clear()
            pending = list(enumerate(job_list))
    for attempt in range(1, max_attempts + 1):
        if not pending:
            break
        failed = []
        for idx, job in pending:
            result = execute_job(job)
            result.tags["attempts"] = attempt
            results[idx] = result
            if not result.ok:
                failed.append((idx, job))
        pending = failed
    report.extend(results[idx] for idx in sorted(results))
    report.log_failures()
    if metrics is not None:
        _record_sweep_metrics(metrics, report)
    return report


def run_multisize_sweep(
    jobs: Iterable[SweepJob],
    processes: Optional[int] = None,
    metrics=None,
) -> SweepReport:
    """Like :func:`run_sweep`, but FIFO-family jobs that differ only in
    cache size collapse into single-pass multi-size simulations.

    An MRC-style sweep — one trace, one policy, N sizes — becomes one
    pass over the trace instead of N (see :mod:`repro.sim.multisim`);
    everything else (other policies, lone sizes, unhashable kwargs)
    runs through the ordinary :func:`run_sweep` machinery.  Results
    come back in input order with miss ratios bit-identical to the
    uncoalesced sweep; coalesced rows carry a ``coalesced`` tag.
    Retry/timeout semantics are not offered here — multi-size groups
    are the fast path; use :func:`run_sweep` when you need them.
    """
    job_list = list(jobs)
    report = SweepReport()
    if not job_list:
        return report
    groups, singles = coalesce_jobs(job_list)
    if not groups:
        return run_sweep(job_list, processes=processes, metrics=metrics)
    if processes is None:
        processes = min(
            len(groups) + len(singles), multiprocessing.cpu_count()
        )

    results: Dict[int, SweepResult] = {}

    def _place(indices: Sequence[int], group_results) -> None:
        for idx, result in zip(indices, group_results):
            result.tags["attempts"] = 1
            results[idx] = result

    pending_groups = list(groups)
    if processes > 1 and len(pending_groups) > 1:
        try:
            pool = _get_pool(processes)
            for indices, group_results in pool.imap_unordered(
                _execute_multi_indexed, pending_groups
            ):
                _place(indices, group_results)
            pending_groups = []
        except (OSError, pickle.PicklingError, AttributeError):
            # Same degradation as run_sweep: no fork / unpicklable
            # factory falls back to in-process execution.
            shutdown_pool()
    for indices, mjob in pending_groups:
        _place(indices, execute_multi_job(mjob))
    if singles:
        singles_report = run_sweep(
            [job for _, job in singles], processes=processes
        )
        for (idx, _), result in zip(singles, singles_report):
            results[idx] = result
    report.extend(results[idx] for idx in sorted(results))
    report.log_failures()
    if metrics is not None:
        _record_sweep_metrics(metrics, report)
    return report
