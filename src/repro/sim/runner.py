"""Parallel simulation sweeps.

The paper ran ~100 passes over 6594 traces on a distributed
fault-tolerant platform.  This module is the single-machine stand-in:
a multiprocessing pool that executes (trace, policy, cache size) jobs,
regenerating synthetic traces inside the workers so no bulk data is
pickled, and tolerating individual job failures (a failed job returns
an error result instead of aborting the sweep).
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.cache.registry import create_policy
from repro.sim.simulator import simulate

TraceFactory = Callable[..., Sequence]


class SweepJob:
    """One simulation: a trace factory, a policy, and a cache size."""

    __slots__ = (
        "trace_name",
        "trace_factory",
        "trace_kwargs",
        "policy",
        "policy_kwargs",
        "cache_size",
        "tags",
    )

    def __init__(
        self,
        trace_name: str,
        trace_factory: TraceFactory,
        trace_kwargs: Dict[str, Any],
        policy: str,
        cache_size: int,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_name = trace_name
        self.trace_factory = trace_factory
        self.trace_kwargs = dict(trace_kwargs)
        self.policy = policy
        self.policy_kwargs = dict(policy_kwargs or {})
        self.cache_size = cache_size
        self.tags = dict(tags or {})

    def __repr__(self) -> str:
        return (
            f"SweepJob({self.trace_name}, {self.policy}, "
            f"size={self.cache_size})"
        )


class SweepResult:
    """Outcome of one :class:`SweepJob` (or its failure)."""

    __slots__ = (
        "trace_name",
        "policy",
        "cache_size",
        "miss_ratio",
        "byte_miss_ratio",
        "requests",
        "tags",
        "error",
    )

    def __init__(
        self,
        trace_name: str,
        policy: str,
        cache_size: int,
        miss_ratio: float = 0.0,
        byte_miss_ratio: float = 0.0,
        requests: int = 0,
        tags: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        self.trace_name = trace_name
        self.policy = policy
        self.cache_size = cache_size
        self.miss_ratio = miss_ratio
        self.byte_miss_ratio = byte_miss_ratio
        self.requests = requests
        self.tags = dict(tags or {})
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        if self.error:
            return f"SweepResult({self.trace_name}, {self.policy}, ERROR)"
        return (
            f"SweepResult({self.trace_name}, {self.policy}, "
            f"miss_ratio={self.miss_ratio:.4f})"
        )


def execute_job(job: SweepJob) -> SweepResult:
    """Run one job; never raises — failures land in ``result.error``."""
    try:
        trace = job.trace_factory(**job.trace_kwargs)
        policy = create_policy(
            job.policy, capacity=job.cache_size, **job.policy_kwargs
        )
        result = simulate(policy, trace)
        return SweepResult(
            trace_name=job.trace_name,
            policy=job.policy,
            cache_size=job.cache_size,
            miss_ratio=result.miss_ratio,
            byte_miss_ratio=result.byte_miss_ratio,
            requests=result.requests,
            tags=job.tags,
        )
    except Exception:  # noqa: BLE001 - fault tolerance is the point
        return SweepResult(
            trace_name=job.trace_name,
            policy=job.policy,
            cache_size=job.cache_size,
            tags=job.tags,
            error=traceback.format_exc(),
        )


def run_sweep(
    jobs: Iterable[SweepJob],
    processes: Optional[int] = None,
) -> List[SweepResult]:
    """Execute jobs, in parallel when ``processes`` allows it.

    ``processes=None`` uses one worker per CPU (capped at the job
    count); ``processes<=1`` runs sequentially in-process, which is
    also the fallback when the platform cannot fork.
    """
    job_list = list(jobs)
    if not job_list:
        return []
    if processes is None:
        processes = min(len(job_list), multiprocessing.cpu_count())
    if processes <= 1 or len(job_list) == 1:
        return [execute_job(job) for job in job_list]
    try:
        with multiprocessing.Pool(processes=processes) as pool:
            return pool.map(execute_job, job_list)
    except (OSError, pickle.PicklingError, AttributeError):
        # No fork available, or a non-module-level trace factory was
        # passed: degrade gracefully to sequential execution.
        return [execute_job(job) for job in job_list]
