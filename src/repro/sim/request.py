"""The request model shared by all policies and the simulator."""

from __future__ import annotations

from typing import Hashable, Optional


class Request:
    """A single cache request.

    Attributes
    ----------
    key:
        Object identifier (any hashable).
    size:
        Object size in the simulation's units.  The paper's main
        evaluation ignores sizes (slab storage), which corresponds to
        ``size=1``; the byte-miss-ratio evaluation passes real sizes.
    time:
        Logical timestamp (request sequence number).  Filled in by the
        simulator; policies may also maintain their own clock.
    next_access:
        Logical time of the *next* request to the same key, or ``None``
        when the key never recurs.  Only populated when a trace has been
        annotated for offline policies (Belady).
    """

    __slots__ = ("key", "size", "time", "next_access")

    def __init__(
        self,
        key: Hashable,
        size: int = 1,
        time: int = 0,
        next_access: Optional[int] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"request size must be positive, got {size}")
        self.key = key
        self.size = size
        self.time = time
        self.next_access = next_access

    def __repr__(self) -> str:
        return (
            f"Request(key={self.key!r}, size={self.size}, time={self.time})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Request):
            return NotImplemented
        return (
            self.key == other.key
            and self.size == other.size
            and self.time == other.time
            and self.next_access == other.next_access
        )

    def __hash__(self) -> int:
        return hash((self.key, self.size, self.time, self.next_access))


def as_request(item) -> Request:
    """Normalize one trace item to a :class:`Request`.

    The single accepted-forms dispatch for every trace consumer:
    ``Request`` objects pass through, ``(key, size)`` tuples and bare
    keys are wrapped.  Having exactly one copy of this logic keeps
    :func:`repro.sim.simulate`, windowed simulation, and the trace
    compiler from drifting apart in what they accept.
    """
    if isinstance(item, Request):
        return item
    if isinstance(item, tuple):
        return Request(item[0], size=item[1])
    return Request(item)
