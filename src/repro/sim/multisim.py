"""Single-pass multi-size simulation for the FIFO family.

Miss-ratio-curve tooling historically re-simulated the trace once per
cache size — O(|sizes| x |trace|).  For the FIFO family one pass is
enough: hits never touch queue state, so all the per-size state the
pass must carry is *which sizes currently hold each key* — a per-key
residency bitmask over the requested sizes — plus one small queue per
size that only misses touch.

A note on exactness.  DEW and CIPARSim motivate this engine via FIFO's
cache *inclusion/intersection* behaviour, but strict stack-algorithm
inclusion ("resident at size C implies resident at every size >= C")
does **not** hold for FIFO — Belady's anomaly is exactly its failure
(``tests/test_multisim.py`` pins the classic 12-request
counterexample, where key 5 is resident at size 3 but not at size 4).
What does hold is the *intersection* property: FIFO contents at nearby
sizes overlap heavily, so on real traces most requests hit at every
requested size at once.  This engine therefore assumes nothing: it
carries the exact per-size queues and is bit-identical to per-size
:func:`repro.sim.simulate` by construction, while the intersection
property makes the common case — residency mask equal to the all-sizes
mask — a single integer compare.  Only the sizes that miss pay
per-size work, and total insert/evict work is bounded by the sum of
per-size miss counts, not |sizes| x |trace|.

Three engines:

* :func:`fifo_multisim` — exact, for ``fifo`` (and its bit-identical
  ``fifo-fast`` twin).
* :func:`sfifo_multisim` — exact, for the two-segment ``sfifo``.
* :func:`s3fifo_multisim_sampled` — *approximate*, for S3-FIFO: its
  three-queue structure couples sizes through the ghost queue and the
  per-object frequency bits, so the exact bitmask trick buys nothing;
  instead one pass over a SHARDS spatial sample advances every
  (downsized) cache size simultaneously.  Accuracy is pinned against
  exact re-simulation by :data:`S3FIFO_MRC_ERROR_BOUND`.

All engines operate on :class:`~repro.traces.compiled.CompiledTrace`
id buffers (raw traces are compiled on entry) and accept unit-size and
sized traces alike.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict, deque
from typing import Dict, List, Sequence

from repro.traces.compiled import CompiledTrace, compile_trace

#: Mean-absolute-error bound of :func:`s3fifo_multisim_sampled` against
#: exact per-size re-simulation, at the default ``rate=0.25`` /
#: ``ensembles=3`` on the synthetic workloads (pinned by
#: ``tests/test_multisim.py``; see docs/PERFORMANCE.md).
S3FIFO_MRC_ERROR_BOUND = 0.05

#: Registry names the exact engines cover.  ``fifo-fast`` is included
#: because the fast twin is pinned bit-identical to ``fifo``, so one
#: single-pass result answers for both.
MULTISIM_POLICIES = ("fifo", "fifo-fast", "sfifo")


class MultiSimResult:
    """Per-size outcome of one single-pass multi-size simulation.

    ``sizes`` is sorted and de-duplicated; the per-size sequences
    (``misses``, ``bytes_missed``, ``evictions``) align with it.
    ``requests``/``bytes_requested`` are scalars — every size saw the
    same trace.  ``exact`` distinguishes the bit-exact FIFO/S-FIFO
    engines from the sampled S3-FIFO estimator.
    """

    __slots__ = (
        "policy_name",
        "sizes",
        "misses",
        "bytes_missed",
        "evictions",
        "requests",
        "bytes_requested",
        "exact",
    )

    def __init__(
        self,
        policy_name: str,
        sizes: Sequence[int],
        misses: Sequence[int],
        bytes_missed: Sequence[int],
        evictions: Sequence[int],
        requests: int,
        bytes_requested: int,
        exact: bool = True,
    ) -> None:
        self.policy_name = policy_name
        self.sizes = list(sizes)
        self.misses = list(misses)
        self.bytes_missed = list(bytes_missed)
        self.evictions = list(evictions)
        self.requests = requests
        self.bytes_requested = bytes_requested
        self.exact = exact

    @property
    def miss_ratios(self) -> List[float]:
        if not self.requests:
            return [0.0] * len(self.sizes)
        return [m / self.requests for m in self.misses]

    @property
    def byte_miss_ratios(self) -> List[float]:
        if not self.bytes_requested:
            return [0.0] * len(self.sizes)
        return [b / self.bytes_requested for b in self.bytes_missed]

    def result_for(self, size: int):
        """The :class:`~repro.sim.simulator.SimulationResult` view of
        one measured size (bit-identical to a per-size ``simulate``
        run for the exact engines)."""
        from repro.sim.simulator import SimulationResult

        try:
            i = self.sizes.index(size)
        except ValueError:
            raise KeyError(
                f"size {size} was not simulated (have {self.sizes})"
            ) from None
        return SimulationResult(
            policy_name=self.policy_name,
            capacity=size,
            requests=self.requests,
            misses=self.misses[i],
            bytes_requested=self.bytes_requested,
            bytes_missed=self.bytes_missed[i],
            evictions=self.evictions[i],
        )

    def to_curve(self):
        """This result as a :class:`~repro.sim.mrc.MissRatioCurve`."""
        from repro.sim.mrc import MissRatioCurve

        return MissRatioCurve(self.sizes, self.miss_ratios)

    def __repr__(self) -> str:
        points = ", ".join(
            f"{s}:{mr:.3f}" for s, mr in zip(self.sizes, self.miss_ratios)
        )
        tag = "exact" if self.exact else "approx"
        return f"MultiSimResult({self.policy_name}, {tag}, {points})"


def _validate_sizes(sizes: Sequence[int]) -> List[int]:
    """Sorted, de-duplicated capacities; mirrors the policy-capacity
    validation so a bad size fails the same way ``create_policy`` would."""
    if not sizes:
        raise ValueError("sizes must be non-empty")
    out = sorted(set(sizes))
    if out[0] <= 0:
        raise ValueError(f"capacity must be positive, got {out[0]}")
    return out


# ----------------------------------------------------------------------
# FIFO
# ----------------------------------------------------------------------
def fifo_multisim(
    trace, sizes: Sequence[int], name: str = "fifo"
) -> MultiSimResult:
    """Exact FIFO miss counts at every requested size, in one pass.

    Bit-identical to running :func:`repro.sim.simulate` with a
    ``fifo`` (or ``fifo-fast``) policy once per size: same per-size
    miss/byte counts, same eviction counts.  ``trace`` is compiled on
    entry if it isn't already.
    """
    ct = compile_trace(trace)
    caps = _validate_sizes(sizes)
    if ct.sizes is None:
        return _fifo_multisim_unit(ct, caps, name)
    return _fifo_multisim_sized(ct, caps, name)


def _fifo_multisim_unit(
    ct: CompiledTrace, caps: List[int], name: str
) -> MultiSimResult:
    k = len(caps)
    full = (1 << k) - 1
    mask = [0] * ct.num_objects
    miss_counts = [0] * k
    # deque(maxlen=cap) *is* a FIFO cache of unit objects: reading [0]
    # before a full append yields exactly the entry FIFO evicts.
    queues = [deque(maxlen=c) for c in caps]
    ids = ct.key_ids()
    for kid in ids:
        m = mask[kid]
        if m == full:
            continue  # resident at every size: FIFO hits do no work
        mm = full & ~m
        while mm:
            b = mm & -mm
            mm ^= b
            j = b.bit_length() - 1
            miss_counts[j] += 1
            q = queues[j]
            if len(q) == caps[j]:
                mask[q[0]] &= ~b
            q.append(kid)
        mask[kid] = full
    n = len(ids)
    evictions = [miss_counts[j] - len(queues[j]) for j in range(k)]
    return MultiSimResult(
        policy_name=name,
        sizes=caps,
        misses=miss_counts,
        bytes_missed=miss_counts,
        evictions=evictions,
        requests=n,
        bytes_requested=n,
    )


def _fifo_multisim_sized(
    ct: CompiledTrace, caps: List[int], name: str
) -> MultiSimResult:
    k = len(caps)
    full = (1 << k) - 1
    mask = [0] * ct.num_objects
    miss_counts = [0] * k
    bytes_missed = [0] * k
    inserts = [0] * k
    used = [0] * k
    # OrderedDict keeps insertion order (the eviction order) and
    # remembers each entry's admitted size, which later requests for
    # the key do not rewrite — exactly the reference's CacheEntry.
    queues: List["OrderedDict[int, int]"] = [OrderedDict() for _ in caps]
    ids = ct.key_ids()
    szs = ct.sizes
    bytes_requested = 0
    # size -> bitmask of capacities the size overflows outright (caps
    # are sorted, so it is always a prefix of the low bits), memoized
    # since real traces draw sizes from a small set.
    over_cache: Dict[int, int] = {}
    for i, kid in enumerate(ids):
        size = szs[i]
        bytes_requested += size
        over = over_cache.get(size)
        if over is None:
            over = over_cache[size] = (1 << bisect_left(caps, size)) - 1
        m = mask[kid]
        if m == full and not over:
            continue
        # Oversized: a miss at these sizes even when the key is
        # resident, with no admission and no metadata update (matches
        # EvictionPolicy.request's early return).
        oo = over
        while oo:
            b = oo & -oo
            oo ^= b
            j = b.bit_length() - 1
            miss_counts[j] += 1
            bytes_missed[j] += size
        mm = (full ^ over) & ~m
        new = m
        while mm:
            b = mm & -mm
            mm ^= b
            j = b.bit_length() - 1
            miss_counts[j] += 1
            bytes_missed[j] += size
            cap = caps[j]
            q = queues[j]
            u = used[j]
            while u + size > cap:
                old, old_size = q.popitem(last=False)
                u -= old_size
                mask[old] &= ~b
            q[kid] = size
            used[j] = u + size
            inserts[j] += 1
            new |= b
        mask[kid] = new
    evictions = [inserts[j] - len(queues[j]) for j in range(k)]
    return MultiSimResult(
        policy_name=name,
        sizes=caps,
        misses=miss_counts,
        bytes_missed=bytes_missed,
        evictions=evictions,
        requests=len(ids),
        bytes_requested=bytes_requested,
    )


# ----------------------------------------------------------------------
# Segmented FIFO
# ----------------------------------------------------------------------
def sfifo_multisim(
    trace, sizes: Sequence[int], primary_ratio: float = 0.3
) -> MultiSimResult:
    """Exact S-FIFO (two-segment FIFO) miss counts at every size.

    Mirrors :class:`repro.cache.sfifo.SegmentedFifoCache` operation
    for operation: misses insert at the primary head, primary overflow
    demotes to the secondary, a secondary hit moves the entry back to
    the primary head, and eviction drains the secondary before the
    primary.  Secondary hits are structural, so the pass keeps *two*
    residency bitmasks per key — primary and secondary — and the
    common case (in the primary everywhere) is still one compare.
    """
    if not 0.0 < primary_ratio < 1.0:
        raise ValueError(
            f"primary_ratio must be in (0, 1), got {primary_ratio}"
        )
    ct = compile_trace(trace)
    caps = _validate_sizes(sizes)
    k = len(caps)
    full = (1 << k) - 1
    pcaps = [max(1, int(c * primary_ratio)) for c in caps]
    pmask = [0] * ct.num_objects
    smask = [0] * ct.num_objects
    miss_counts = [0] * k
    bytes_missed = [0] * k
    inserts = [0] * k
    used = [0] * k
    pused = [0] * k
    primary: List["OrderedDict[int, int]"] = [OrderedDict() for _ in caps]
    secondary: List["OrderedDict[int, int]"] = [OrderedDict() for _ in caps]
    ids = ct.key_ids()
    szs = ct.sizes
    bytes_requested = 0
    n = len(ids)
    # size -> bitmask of capacities the size overflows outright (see
    # _fifo_multisim_sized); unit traces never overflow a positive cap.
    over_cache: Dict[int, int] = {0: 0} if szs is None else {}

    def push_primary(j: int, b: int, kid: int, size: int) -> None:
        pri = primary[j]
        pri[kid] = size
        pused[j] += size
        pmask[kid] |= b
        # Demote oldest primary entries while over the segment cap,
        # never emptying the segment (reference keeps len > 1 guard).
        while pused[j] > pcaps[j] and len(pri) > 1:
            k2, sz2 = pri.popitem(last=False)
            pused[j] -= sz2
            secondary[j][k2] = sz2
            pmask[k2] &= ~b
            smask[k2] |= b

    def evict(j: int, b: int) -> None:
        sec = secondary[j]
        if sec:
            k2, sz2 = sec.popitem(last=False)
            smask[k2] &= ~b
        else:
            k2, sz2 = primary[j].popitem(last=False)
            pused[j] -= sz2
            pmask[k2] &= ~b
        used[j] -= sz2

    for i in range(n):
        kid = ids[i]
        if szs is None:
            size = 1
            over = 0
        else:
            size = szs[i]
            over = over_cache.get(size)
            if over is None:
                over = over_cache[size] = (1 << bisect_left(caps, size)) - 1
        bytes_requested += size
        p = pmask[kid]
        if p == full and not over:
            continue  # primary hit at every size: no structural work
        # Oversized: a miss at these sizes even when the key is
        # resident (in either segment), with no promotion, no
        # admission, and no metadata update (matches
        # EvictionPolicy.request's early return before _access).
        oo = over
        while oo:
            b = oo & -oo
            oo ^= b
            j = b.bit_length() - 1
            miss_counts[j] += 1
            bytes_missed[j] += size
        fit = full ^ over
        s = smask[kid]
        ss = s & fit
        while ss:  # secondary hits: move back to the primary head
            b = ss & -ss
            ss ^= b
            j = b.bit_length() - 1
            entry_size = secondary[j].pop(kid)
            smask[kid] &= ~b
            push_primary(j, b, kid, entry_size)
        mm = fit & ~(p | s)
        while mm:  # misses: evict to fit, insert at the primary head
            b = mm & -mm
            mm ^= b
            j = b.bit_length() - 1
            miss_counts[j] += 1
            bytes_missed[j] += size
            while used[j] + size > caps[j]:
                evict(j, b)
            used[j] += size
            inserts[j] += 1
            push_primary(j, b, kid, size)
    evictions = [
        inserts[j] - len(primary[j]) - len(secondary[j]) for j in range(k)
    ]
    return MultiSimResult(
        policy_name="sfifo",
        sizes=caps,
        misses=miss_counts,
        bytes_missed=bytes_missed,
        evictions=evictions,
        requests=n,
        bytes_requested=bytes_requested,
    )


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def multisim(
    policy: str, trace, sizes: Sequence[int], **policy_kwargs
) -> MultiSimResult:
    """Run the exact single-pass engine for a FIFO-family policy name.

    ``policy`` must be one of :data:`MULTISIM_POLICIES`; kwargs are the
    policy's constructor kwargs (``primary_ratio`` for ``sfifo``).
    """
    if policy in ("fifo", "fifo-fast"):
        if policy_kwargs:
            raise TypeError(
                f"fifo takes no policy kwargs, got {sorted(policy_kwargs)}"
            )
        return fifo_multisim(trace, sizes, name=policy)
    if policy == "sfifo":
        return sfifo_multisim(trace, sizes, **policy_kwargs)
    raise ValueError(
        f"multisim supports the FIFO family {MULTISIM_POLICIES}, "
        f"got {policy!r}; use simulate()/sampled_mrc for other policies"
    )


# ----------------------------------------------------------------------
# S3-FIFO (approximate)
# ----------------------------------------------------------------------
def s3fifo_multisim_sampled(
    trace,
    sizes: Sequence[int],
    rate: float = 0.25,
    seed: int = 0,
    ensembles: int = 3,
    policy: str = "s3fifo",
    **policy_kwargs,
) -> MultiSimResult:
    """Approximate S3-FIFO miss ratios at every size in one sampled pass.

    S3-FIFO breaks the cheap exact trick: hits move frequency bits that
    later decide evictions, and the ghost queue couples a key's fate
    across sizes, so per-size state cannot be compressed to residency
    bitmasks.  Instead this runs SHARDS spatial sampling *once* and
    advances one downsized cache per requested size simultaneously
    while streaming the sample — a single pass over ``rate`` of the
    trace instead of |sizes| exact passes.

    With the defaults (``rate=0.25``, ``ensembles=3``) the mean
    absolute error against exact per-size re-simulation stays within
    :data:`S3FIFO_MRC_ERROR_BOUND` on the synthetic workloads; the
    differential suite pins this.  ``ensembles`` independent samples
    are aggregated by ratio-of-sums, which averages away the hot-key
    lottery exactly as :func:`repro.sim.mrc.sampled_mrc` does.
    """
    from repro.cache.registry import create_policy
    from repro.sim.mrc import spatial_sample

    caps = _validate_sizes(sizes)
    if ensembles < 1:
        raise ValueError(f"ensembles must be >= 1, got {ensembles}")
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    k = len(caps)
    misses = [0] * k
    bytes_missed = [0] * k
    evictions = [0] * k
    requests = 0
    bytes_requested = 0
    ran = False
    # Compile the full trace once: the spatial filter then runs
    # vectorized over the interned id buffer for every ensemble.
    trace = compile_trace(trace)
    for e in range(ensembles):
        sample = spatial_sample(trace, rate, seed=seed + e)
        if not sample:
            continue
        ran = True
        ct = compile_trace(sample, name=f"mrc-sample-{seed + e}")
        caches = [
            create_policy(
                policy, capacity=max(1, int(c * rate)), **policy_kwargs
            )
            for c in caps
        ]
        for req in ct.iter_requests(reuse=True):
            for cache in caches:
                cache.request(req)
        st0 = caches[0].stats
        requests += st0.requests
        bytes_requested += st0.bytes_requested
        for j, cache in enumerate(caches):
            misses[j] += cache.stats.misses
            bytes_missed[j] += cache.stats.bytes_missed
            evictions[j] += cache.stats.evictions
    if not ran:
        raise ValueError(
            f"sampling rate {rate} produced an empty trace; raise the rate"
        )
    return MultiSimResult(
        policy_name=policy,
        sizes=caps,
        misses=misses,
        bytes_missed=bytes_missed,
        evictions=evictions,
        requests=requests,
        bytes_requested=bytes_requested,
        exact=False,
    )
