"""Vectorized hit-run simulation for the FIFO family.

The paper's structural claim — *lazy promotion*: cache hits never
reorder a FIFO queue — is also a simulation speedup.  On a skewed
trace at 0.9 hit ratio, ~90% of requests leave the queue state
untouched, yet the scalar engines still pay a Python dispatch per
request.  This module cashes the invariant in (the CIPARSim / DEW
observation: FIFO simulation can be per-*event* instead of
per-*request*):

* The trace's dense int-id buffer is processed in chunks.  One
  vectorized dense-array lookup (``mask[ids[c0:c1]]``) probes
  residency for the whole chunk; positions whose key is resident are
  *hits by construction* and are consumed as whole runs without
  entering Python per-request.
* Only candidate positions — non-resident keys, plus oversized
  requests — drop to the scalar per-policy step, which mirrors the
  reference eviction logic exactly.
* Hit side-effects that the scalar step later needs (S3-FIFO's capped
  frequency, SIEVE's visited bit) are **lazy**: they are reconstructed
  exactly, on demand, from the trace's per-key occurrence index
  (:meth:`~repro.traces.compiled.CompiledTrace.occurrence_index`).
  Between two scalar touches of a resident key, every one of its
  occurrences is a hit, so ``freq = min(stored + pending, cap)``
  (increment-then-cap commutes into cap-of-sum) and
  ``visited = stored or pending > 0`` (idempotent).  No per-run NumPy
  call is needed on the hit path at all.
* Exactness across a chunk is preserved by *forced candidates*: when a
  key stops being vector-consumable mid-chunk (eviction, or S-FIFO
  demotion to the secondary segment), its next occurrence inside the
  chunk — found by advancing its occurrence pointer, each position
  visited at most once over the whole run — is spliced into the
  candidate stream, so the stale region of the precomputed mask is
  never trusted.  Keys that *become* resident mid-chunk are already
  candidates at every occurrence (their mask was 0 at chunk start) and
  re-probe live state in the scalar step.

LRU is excluded by design: its hits mutate the recency order, which is
exactly the paper's point.

The engine never mutates the policy object it is given — the policy is
read only for its configuration (see :func:`vector_simulate`).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import OrderedDict, deque
from typing import Optional

from repro.sim.simulator import SimulationResult, _resolve_warmup

#: Default number of requests probed per vectorized residency lookup.
VECTOR_CHUNK = 4096

#: Registry names the vector engine can execute (the FIFO family; the
#: ``*-fast`` twins share their reference's kernel).
VECTOR_POLICIES = (
    "fifo", "fifo-fast", "sfifo", "sieve", "sieve-fast",
    "s3fifo", "s3fifo-fast",
)


def _numpy():
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep
        return None
    return np


# ----------------------------------------------------------------------
# Kernels: per-policy scalar steps over a shared lazy-state substrate
# ----------------------------------------------------------------------
class _KernelBase:
    """Shared state: residency mask, occurrence pointers, forced events.

    ``mask[kid] == 1`` means a request for ``kid`` is a
    *vector-consumable* hit: resident, and the hit has no structural
    effect the vector pass must model eagerly.  (For S-FIFO that is
    primary residency only — secondary hits restructure the queues and
    take the scalar path.)

    ``ptr[kid]`` indexes the key's occurrence chain.  Occurrences left
    of the pointer are folded into stored lazy state; occurrences
    between the pointer and the current position are pending hits.
    Every advance consumes a position permanently, so the total pointer
    work over a run is O(requests) regardless of how often it happens.

    Insert invariant: when a key *misses* at position ``pos``, its
    pointer already sits exactly at ``pos``.  Every occurrence of a
    non-resident key is a scalar event (static candidate or forced),
    and each such event ends by syncing the pointer past itself —
    eviction forces consume up to the eviction position and the next
    occurrence is the forced event itself.  Kernels therefore consume
    the insert occurrence with a bare ``ptr[kid] += 1``.
    """

    def __init__(self, capacity: int, trace) -> None:
        self.capacity = capacity
        self.num_objects = trace.num_objects
        # bytearray, not ndarray: the scalar step reads and writes
        # single cells constantly, and bytearray indexing is ~10x
        # cheaper than ndarray scalar access.  The engine probes it
        # vectorized through a zero-copy np.frombuffer view.
        self.mask = bytearray(self.num_objects)
        self.occ_pos, self.occ_start = trace.occurrence_index()
        self.ptr = list(self.occ_start[:-1])
        self.forced: list = []
        self.chunk_end = 0
        self.evictions = 0
        self.used = 0

    def begin_chunk(self, end: int) -> list:
        forced = self.forced = []
        self.chunk_end = end
        return forced

    def _take_pending(self, kid: int, pos: int) -> int:
        """Consume ``kid``'s occurrences at positions <= ``pos``;
        return how many fell strictly before ``pos`` (pending hits)."""
        op = self.occ_pos
        p = self.ptr[kid]
        end = self.occ_start[kid + 1]
        if p >= end or op[p] > pos:
            return 0
        lt = bisect_left(op, pos, p, end)
        nxt = lt
        if nxt < end and op[nxt] == pos:
            nxt += 1
        self.ptr[kid] = nxt
        return lt - p

    def _force_next(self, kid: int, pos: int) -> None:
        """After ``kid`` left the vector-consumable set at ``pos``,
        splice its next occurrence into this chunk's candidate stream.
        (Flattened _take_pending + _force_next_synced — this runs once
        per eviction, so call overhead matters.)"""
        op = self.occ_pos
        p = self.ptr[kid]
        end = self.occ_start[kid + 1]
        if p < end and op[p] <= pos:
            p = bisect_left(op, pos, p, end)
            if p < end and op[p] == pos:
                p += 1
            self.ptr[kid] = p
        if p < end:
            nxt = op[p]
            if nxt < self.chunk_end:
                insort(self.forced, nxt)

    def _force_next_synced(self, kid: int) -> None:
        """Like :meth:`_force_next` for a pointer already past ``pos``."""
        p = self.ptr[kid]
        if p < self.occ_start[kid + 1]:
            nxt = self.occ_pos[p]
            if nxt < self.chunk_end:
                insort(self.forced, nxt)

    # Oversized requests (size > capacity) miss without touching the
    # policy (base.request's early return), so the engine routes them
    # here instead of step().  A resident key's occurrence must be
    # consumed *without* counting as a hit; a non-resident key may need
    # its next occurrence forced (its mask column can be stale when it
    # was evicted earlier in the chunk).
    def oversized_touch(self, kid: int, pos: int) -> None:
        if self.mask[kid]:
            self._skip_hit(kid, pos)
        else:
            self._force_next(kid, pos)

    def _skip_hit(self, kid: int, pos: int) -> None:
        self._take_pending(kid, pos)


class _FifoKernel(_KernelBase):
    """Plain FIFO.  Hits have no engine-visible effect at all."""

    def __init__(self, capacity: int, trace) -> None:
        super().__init__(capacity, trace)
        self.queue: deque = deque()
        self.size_of: Optional[dict] = None if trace.sizes is None else {}

    def step(self, kid: int, size: int, pos: int) -> bool:
        mask = self.mask
        if mask[kid]:
            return True
        queue = self.queue
        if self.size_of is None:
            if len(queue) >= self.capacity:
                victim = queue.popleft()
                mask[victim] = 0
                self.evictions += 1
                self._force_next(victim, pos)
        else:
            used = self.used
            cap = self.capacity
            size_of = self.size_of
            while used + size > cap:
                victim = queue.popleft()
                used -= size_of.pop(victim)
                mask[victim] = 0
                self.evictions += 1
                self._force_next(victim, pos)
            self.used = used + size
            size_of[kid] = size
        queue.append(kid)
        mask[kid] = 1
        self.ptr[kid] += 1  # consume this occurrence (insert invariant)
        return False


class _SFifoKernel(_KernelBase):
    """Segmented FIFO.  Only primary hits are queue-invariant; a
    secondary hit restructures (promotion + demotion cascade), so the
    mask covers primary residents only and secondary keys always take
    the scalar path."""

    def __init__(self, capacity: int, trace, primary_cap: int) -> None:
        super().__init__(capacity, trace)
        self.primary_cap = primary_cap
        self.primary: OrderedDict = OrderedDict()   # kid -> size
        self.secondary: OrderedDict = OrderedDict()
        self.primary_used = 0

    def step(self, kid: int, size: int, pos: int) -> bool:
        if self.mask[kid]:
            return True
        secondary = self.secondary
        if kid in secondary:
            self._push_primary(kid, secondary.pop(kid), pos)
            return True
        while self.used + size > self.capacity:
            self._evict_one(pos)
        self.used += size
        self._push_primary(kid, size, pos)
        self.ptr[kid] += 1  # consume this occurrence (insert invariant)
        return False

    def _push_primary(self, kid: int, size: int, pos: int) -> None:
        primary = self.primary
        primary[kid] = size
        self.mask[kid] = 1
        self.primary_used += size
        while self.primary_used > self.primary_cap and len(primary) > 1:
            victim, vsize = primary.popitem(last=False)
            self.primary_used -= vsize
            self.secondary[victim] = vsize
            self.mask[victim] = 0
            self._force_next(victim, pos)

    def _evict_one(self, pos: int) -> None:
        if self.secondary:
            _, vsize = self.secondary.popitem(last=False)
        else:
            victim, vsize = self.primary.popitem(last=False)
            self.primary_used -= vsize
            self.mask[victim] = 0
            self._force_next(victim, pos)
        self.used -= vsize
        self.evictions += 1

    # oversized_touch: the base implementation is exact here too — a
    # secondary-resident key is not vector-consumable (mask 0), and its
    # mask column can be stale when it was demoted earlier in the
    # chunk, so its next occurrence must be forced like an absent
    # key's; the forced position dedups against the static candidate.


class _SieveKernel(_KernelBase):
    """SIEVE with a lazy visited bit.

    ``vstored[kid]`` holds the visited bit as of the key's last scalar
    touch; the true bit at eviction-scan time is
    ``vstored or pending > 0`` — visits are idempotent, so folding any
    number of pending hits is exact.
    """

    def __init__(self, capacity: int, trace) -> None:
        super().__init__(capacity, trace)
        k = self.num_objects
        self.vstored = bytearray(k)
        self.newer = [-1] * k   # toward the queue head (insertion side)
        self.older = [-1] * k   # toward the tail (eviction side)
        self.head = -1
        self.tail = -1
        self.hand = -1
        self.size_of: Optional[dict] = None if trace.sizes is None else {}
        self.count = 0

    def step(self, kid: int, size: int, pos: int) -> bool:
        if self.mask[kid]:
            return True
        if self.size_of is None:
            if self.count >= self.capacity:
                self._evict_one(pos)
        else:
            while self.used + size > self.capacity:
                self._evict_one(pos)
            self.size_of[kid] = size
        # push at the head
        self.newer[kid] = -1
        self.older[kid] = self.head
        if self.head != -1:
            self.newer[self.head] = kid
        self.head = kid
        if self.tail == -1:
            self.tail = kid
        self.vstored[kid] = 0
        self.mask[kid] = 1
        self.used += size
        self.count += 1
        self.ptr[kid] += 1  # consume this occurrence (insert invariant)
        return False

    def _evict_one(self, pos: int) -> None:
        newer = self.newer
        vstored = self.vstored
        slot = self.hand
        if slot == -1:
            slot = self.tail
        # Scan toward the head, clearing visited bits, wrapping to the
        # tail — the first unvisited slot is the victim (reference
        # SieveCache._evict).  Pending occurrences are always consumed
        # before a clear: they predate the clear, so leaving them
        # pending would wrongly resurrect the bit at a later read.
        while True:
            pending = self._take_pending(slot, pos)
            if not (pending or vstored[slot]):
                break
            vstored[slot] = 0
            nxt = newer[slot]
            slot = nxt if nxt != -1 else self.tail
        self.hand = newer[slot]  # -1 when the victim was the head
        # unlink
        nw = newer[slot]
        ol = self.older[slot]
        if nw != -1:
            self.older[nw] = ol
        else:
            self.head = ol
        if ol != -1:
            newer[ol] = nw
        else:
            self.tail = nw
        self.mask[slot] = 0
        self.used -= 1 if self.size_of is None else self.size_of.pop(slot)
        self.count -= 1
        self.evictions += 1
        self._force_next_synced(slot)

    def _skip_hit(self, kid: int, pos: int) -> None:
        if self._take_pending(kid, pos):
            self.vstored[kid] = 1


class _S3FifoKernel(_KernelBase):
    """S3-FIFO (Algorithm 1) with a lazy capped frequency.

    ``fstored[kid]`` is exact as of the key's last scalar touch
    (insert, promotion, reinsertion decrement).  Between touches only
    capped +1 increments happen — every occurrence of a resident key is
    a hit — so the true frequency read by the evictor is
    ``min(fstored + pending, freq_cap)``: increment-then-cap commutes
    into cap-of-sum because ``min(min(f + a, c) + b, c) ==
    min(f + a + b, c)``.
    """

    def __init__(
        self,
        capacity: int,
        trace,
        s_cap: int,
        m_cap: int,
        freq_cap: int,
        threshold: int,
        ghost_dynamic: bool,
        ghost_cap: int,
    ) -> None:
        from repro.structures.ghost import GhostFifo

        super().__init__(capacity, trace)
        self.s_cap = s_cap
        self.m_cap = m_cap
        self.freq_cap = freq_cap
        self.threshold = threshold
        self.ghost_dynamic = ghost_dynamic
        self.unit = trace.sizes is None
        self.small: deque = deque()
        self.main: deque = deque()
        self.size_of: dict = {}
        self.fstored = [0] * self.num_objects
        self.ghost = GhostFifo(ghost_cap)
        self.s_used = 0
        self.m_used = 0
        self.count = 0

    def step(self, kid: int, size: int, pos: int) -> bool:
        if self.mask[kid]:
            return True
        while self.used + size > self.capacity:
            if self.s_used >= self.s_cap or not self.main:
                self._evict_s(pos)
            else:
                self._evict_m(pos)
        if self.ghost.remove(kid):
            self.main.append(kid)
            self.m_used += size
        else:
            self.small.append(kid)
            self.s_used += size
        self.size_of[kid] = size
        self.fstored[kid] = 0
        self.used += size
        self.count += 1
        self.mask[kid] = 1
        self.ptr[kid] += 1  # consume this occurrence (insert invariant)
        return False

    def _freq_of(self, kid: int, pos: int) -> int:
        f = self.fstored[kid] + self._take_pending(kid, pos)
        cap = self.freq_cap
        return f if f < cap else cap

    def _evict_s(self, pos: int) -> None:
        small = self.small
        while small:
            victim = small.popleft()
            vsize = self.size_of[victim]
            self.s_used -= vsize
            if self._freq_of(victim, pos) >= self.threshold:
                self.fstored[victim] = 0  # access bits cleared on the move
                self.main.append(victim)
                self.m_used += vsize
                if self.m_used > self.m_cap:
                    self._evict_m(pos)
            else:
                del self.size_of[victim]
                self.used -= vsize
                self.count -= 1
                if self.ghost_dynamic and not self.unit:
                    # Paper sizing: as many ghost entries as M can hold
                    # objects (reference S3FifoCache._evict_s).  On
                    # unit traces the mean size is identically 1.0 and
                    # the capacity stays m_cap, so the resize is
                    # skipped there.
                    mean_size = (
                        self.used / self.count if self.count else 1.0
                    )
                    self.ghost.set_capacity(
                        max(1, int(self.m_cap / max(1.0, mean_size)))
                    )
                self.ghost.add(victim)
                self.mask[victim] = 0
                self.evictions += 1
                self._force_next_synced(victim)
                return
        # S drained entirely into M; fall back to evicting from M.
        if self.main:
            self._evict_m(pos)

    def _evict_m(self, pos: int) -> None:
        main = self.main
        while main:
            victim = main.popleft()
            f = self._freq_of(victim, pos)
            if f > 0:
                self.fstored[victim] = f - 1
                main.append(victim)  # FIFO-reinsertion
            else:
                vsize = self.size_of.pop(victim)
                self.m_used -= vsize
                self.used -= vsize
                self.count -= 1
                self.mask[victim] = 0
                self.evictions += 1
                self._force_next_synced(victim)
                return

    def _skip_hit(self, kid: int, pos: int) -> None:
        # Oversized touch of a resident key: fold pending hits below
        # ``pos`` into the stored frequency, then drop the occurrence
        # at ``pos`` itself (the reference never calls _access for it).
        f = self.fstored[kid] + self._take_pending(kid, pos)
        cap = self.freq_cap
        self.fstored[kid] = f if f < cap else cap


# ----------------------------------------------------------------------
# Policy -> kernel adaptation
# ----------------------------------------------------------------------
def _build_kernel(policy, trace) -> Optional[_KernelBase]:
    spec = getattr(policy, "vector_spec", None)
    spec = spec() if callable(spec) else None
    if spec is None:
        return None
    kind = spec["kind"]
    capacity = policy.capacity
    if kind == "fifo":
        return _FifoKernel(capacity, trace)
    if kind == "sfifo":
        return _SFifoKernel(capacity, trace, spec["primary_cap"])
    if kind == "sieve":
        return _SieveKernel(capacity, trace)
    if kind == "s3fifo":
        return _S3FifoKernel(
            capacity,
            trace,
            s_cap=spec["s_cap"],
            m_cap=spec["m_cap"],
            freq_cap=spec["freq_cap"],
            threshold=spec["threshold"],
            ghost_dynamic=spec["ghost_dynamic"],
            ghost_cap=spec["ghost_cap"],
        )
    raise ValueError(f"unknown vector kernel kind {kind!r}")


def vector_eligible(policy, trace) -> bool:
    """Whether ``(policy, trace)`` can run on the vector engine.

    Requires a :class:`~repro.traces.compiled.CompiledTrace`, a policy
    that publishes a vector spec (the FIFO family and its ``*-fast``
    twins; subclasses with overridden behaviour opt out), a *pristine*
    policy (no prior requests and nothing resident — the engine
    simulates a fresh cache), and no eviction/demotion listeners (the
    engine does not replay per-event notifications).
    """
    from repro.traces.compiled import CompiledTrace

    if not isinstance(trace, CompiledTrace):
        return False
    if _numpy() is None:
        return False
    spec = getattr(policy, "vector_spec", None)
    if spec is None or spec() is None:
        return False
    if policy.clock != 0 or policy.stats.requests != 0 or len(policy) != 0:
        return False
    if policy._evict_listeners or policy._demote_listeners:
        return False
    return True


def vector_simulate(
    policy,
    trace,
    warmup: float = 0.0,
    warmup_requests: Optional[int] = None,
    chunk: int = VECTOR_CHUNK,
) -> SimulationResult:
    """Simulate ``policy`` over a compiled trace with the vector engine.

    Returns a :class:`~repro.sim.simulator.SimulationResult`
    bit-identical to the scalar engines' (same misses, bytes, eviction
    split) for every supported policy.  The policy object is read only
    for its configuration and is **not** mutated: its stats, clock, and
    resident set stay exactly as passed in (pristine, per
    :func:`vector_eligible`).  ``chunk`` sets the vectorized probe
    width; results are invariant to it by construction.
    """
    if not vector_eligible(policy, trace):
        raise ValueError(
            f"policy {policy.name!r} / trace {trace!r} is not vector-"
            "eligible (see repro.sim.vector.vector_eligible)"
        )
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    np = _numpy()
    kernel = _build_kernel(policy, trace)
    n = len(trace)
    warmup_requests = min(_resolve_warmup(trace, warmup, warmup_requests), n)

    ids_np = np.frombuffer(trace.keys, dtype=np.int64)
    ids = trace.key_ids()
    sizes = trace.sizes
    capacity = policy.capacity
    if sizes is not None:
        sizes_np = np.frombuffer(sizes, dtype=np.int64)
        over_np = sizes_np > capacity
    # Zero-copy view over the kernel's bytearray mask for the probe.
    mask_np = np.frombuffer(kernel.mask, dtype=np.uint8)
    step = kernel.step
    oversized_touch = kernel.oversized_touch

    # counters[bucket] = [misses, bytes_requested, bytes_missed]
    counters = [[0, 0, 0], [0, 0, 0]]
    warmup_evictions = 0
    for bucket, (lo, hi) in enumerate(((0, warmup_requests),
                                       (warmup_requests, n))):
        if bucket == 1:
            warmup_evictions = kernel.evictions
        acc = counters[bucket]
        for c0 in range(lo, hi, chunk):
            c1 = min(c0 + chunk, hi)
            probe = mask_np[ids_np[c0:c1]]
            if sizes is None:
                cand_arr = np.flatnonzero(probe == 0)
                if not cand_arr.size:
                    continue
                cand = (cand_arr + c0).tolist()
                forced = kernel.begin_chunk(c1)
                ci = 0
                nc = len(cand)
                while ci < nc or forced:
                    if ci < nc:
                        evt = cand[ci]
                        if forced and forced[0] <= evt:
                            fevt = forced.pop(0)
                            if fevt == evt:
                                ci += 1
                            evt = fevt
                        else:
                            ci += 1
                    else:
                        evt = forced.pop(0)
                    if not step(ids[evt], 1, evt):
                        acc[0] += 1
            else:
                acc[1] += int(sizes_np[c0:c1].sum())
                cand_arr = np.flatnonzero((probe == 0) | over_np[c0:c1])
                if not cand_arr.size:
                    continue
                cand = (cand_arr + c0).tolist()
                forced = kernel.begin_chunk(c1)
                ci = 0
                nc = len(cand)
                while ci < nc or forced:
                    if ci < nc:
                        evt = cand[ci]
                        if forced and forced[0] <= evt:
                            fevt = forced.pop(0)
                            if fevt == evt:
                                ci += 1
                            evt = fevt
                        else:
                            ci += 1
                    else:
                        evt = forced.pop(0)
                    kid = ids[evt]
                    size = sizes[evt]
                    if size > capacity:
                        acc[0] += 1
                        acc[2] += size
                        oversized_touch(kid, evt)
                    elif not step(kid, size, evt):
                        acc[0] += 1
                        acc[2] += size
    requests = n - warmup_requests
    misses = counters[1][0]
    if sizes is None:
        bytes_requested = requests
        bytes_missed = misses
    else:
        bytes_requested = counters[1][1]
        bytes_missed = counters[1][2]
    return SimulationResult(
        policy_name=policy.name,
        capacity=capacity,
        requests=requests,
        misses=misses,
        bytes_requested=bytes_requested,
        bytes_missed=bytes_missed,
        evictions=kernel.evictions - warmup_evictions,
        warmup_requests=warmup_requests,
        warmup_evictions=warmup_evictions,
    )
