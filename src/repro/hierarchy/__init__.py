"""Multi-level cache hierarchies (Section 7 context).

The paper situates quick demotion among hierarchical-cache techniques
(exclusive caching, demotion-based placement — Wong & Wilkes, ULC,
Karma, MQ).  This package provides an N-level hierarchy simulator with
inclusive and exclusive modes so those interactions can be studied
with any of the library's eviction policies at any level; the flash
cache of :mod:`repro.flash` is the admission-focused two-level special
case.
"""

from repro.hierarchy.multilevel import HierarchyResult, MultiLevelCache

__all__ = ["HierarchyResult", "MultiLevelCache"]
