"""N-level cache hierarchy with inclusive or exclusive placement.

Levels are ordered fastest (L1) to slowest (Ln); each level is any
:class:`~repro.cache.base.EvictionPolicy`.  Two placement disciplines:

* **exclusive** — an object lives in exactly one level.  L1 misses
  that hit a lower level *promote* the object upward (removing it
  below); objects evicted from level i are *demoted* into level i+1
  (the victim-cache pattern); evictions from the last level leave the
  hierarchy.  Total effective capacity is the sum of levels.
* **inclusive** — lower levels are supersets: a miss fills every
  level, an upper-level hit refreshes the levels below, and an
  eviction from level i does not touch level i+1.

Demotions into lower levels count toward a ``demotion_bytes`` metric —
for a DRAM-over-flash hierarchy this is the write-endurance cost the
paper's Fig. 9 is about.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.cache.base import EvictionPolicy
from repro.resilience.faults import LEVEL_OUTAGE, FaultPlan
from repro.sim.request import Request


class HierarchyResult:
    """Aggregate and per-level statistics of one hierarchy run.

    ``degraded_requests`` counts requests that had to skip at least one
    failed (bypassed) level; ``dropped_demotions`` counts eviction
    victims lost because every level below was down;
    ``level_outages[i]`` counts how many times level ``i`` went dark.
    """

    def __init__(self, num_levels: int) -> None:
        self.requests = 0
        self.misses = 0
        self.level_hits = [0] * num_levels
        self.promotions = 0
        self.demotions = 0
        self.demotion_bytes = 0
        self.degraded_requests = 0
        self.dropped_demotions = 0
        self.level_outages = [0] * num_levels

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.requests if self.requests else 0.0

    def hit_ratio_at(self, level: int) -> float:
        if self.requests == 0:
            return 0.0
        return self.level_hits[level] / self.requests

    def __repr__(self) -> str:
        hits = ", ".join(
            f"L{i + 1}={h}" for i, h in enumerate(self.level_hits)
        )
        return (
            f"HierarchyResult(miss_ratio={self.miss_ratio:.4f}, {hits})"
        )


class MultiLevelCache:
    """A hierarchy of eviction policies with pluggable placement."""

    def __init__(
        self,
        levels: Sequence[EvictionPolicy],
        mode: str = "exclusive",
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if not levels:
            raise ValueError("need at least one cache level")
        if mode not in {"exclusive", "inclusive"}:
            raise ValueError(
                f"mode must be 'exclusive' or 'inclusive', got {mode!r}"
            )
        self._levels: List[EvictionPolicy] = list(levels)
        self._mode = mode
        self._faults = faults
        self._down = [False] * len(levels)
        self._touched_down = False
        self.result = HierarchyResult(len(levels))
        # Wire demotion-on-eviction for the exclusive discipline: each
        # level's eviction victim is inserted into the level below it
        # (a chain of victim caches).  Promotions remove the object
        # from the lower level with `delete` when the policy supports
        # it; `delete` does not emit an eviction event, so promotion
        # never triggers a spurious demotion.
        if mode == "exclusive":
            for i, level in enumerate(self._levels):
                level.add_eviction_listener(self._make_demoter(i))

    # ------------------------------------------------------------------
    @property
    def levels(self) -> List[EvictionPolicy]:
        return self._levels

    @property
    def mode(self) -> str:
        return self._mode

    # ------------------------------------------------------------------
    # Degradation: failed levels are bypassed until they recover
    # ------------------------------------------------------------------
    def level_down(self, index: int) -> bool:
        """Whether level ``index`` is currently bypassed."""
        return self._down[index]

    def fail_level(self, index: int) -> None:
        """Take a level dark: lookups, fills, promotions, and demotions
        bypass it (its contents are retained for recovery)."""
        if not self._down[index]:
            self._down[index] = True
            self.result.level_outages[index] += 1

    def recover_level(self, index: int) -> None:
        """Bring a failed level back; stale contents age out naturally."""
        self._down[index] = False

    def _refresh_outages(self) -> None:
        """Sync level state with the fault plan (clock = request count).

        With a plan installed, the plan is authoritative — it both
        fails and recovers levels; :meth:`fail_level` /
        :meth:`recover_level` are for plan-less (manual) operation.
        """
        if self._faults is None:
            return
        clock = self.result.requests
        for i in range(len(self._levels)):
            want_down = self._faults.active(LEVEL_OUTAGE, clock, target=i)
            if want_down and not self._down[i]:
                self.fail_level(i)
            elif not want_down and self._down[i]:
                self.recover_level(i)

    def _skip(self, index: int) -> bool:
        """True (and mark the request degraded) when ``index`` is down."""
        if self._down[index]:
            self._touched_down = True
            return True
        return False

    def _make_demoter(self, index: int):
        def on_evict(event) -> None:
            blocked = False
            for j in range(index + 1, len(self._levels)):
                if self._skip(j):
                    blocked = True
                    continue
                below = self._levels[j]
                if event.size > below.capacity:
                    return
                self.result.demotions += 1
                self.result.demotion_bytes += event.size
                below.request(Request(event.key, size=event.size))
                return
            if blocked:
                # Every level below was dark: the victim is lost
                # instead of crashing the demotion chain.
                self.result.dropped_demotions += 1

        return on_evict

    # ------------------------------------------------------------------
    def request(self, key: Hashable, size: int = 1) -> bool:
        self.result.requests += 1
        self._refresh_outages()
        self._touched_down = False
        try:
            return self._request(key, size)
        finally:
            if self._touched_down:
                self.result.degraded_requests += 1

    def _request(self, key: Hashable, size: int) -> bool:
        for i, level in enumerate(self._levels):
            if self._skip(i):
                continue
            if key in level:
                level.request(Request(key, size=size))
                self.result.level_hits[i] += 1
                if i > 0:
                    if self._mode == "exclusive":
                        self._promote(key, size, from_level=i)
                    else:
                        self._fill_upper(key, size, up_to=i)
                return True
        # Full miss.
        self.result.misses += 1
        if self._mode == "exclusive":
            top = self._first_up_level()
            if top is not None and size <= self._levels[top].capacity:
                self._levels[top].request(Request(key, size=size))
        else:
            for i, level in enumerate(self._levels):
                if self._skip(i):
                    continue
                if size <= level.capacity:
                    level.request(Request(key, size=size))
        return False

    def _first_up_level(self, below: int = 0) -> Optional[int]:
        for i in range(below, len(self._levels)):
            if not self._skip(i):
                return i
        return None

    def _promote(self, key: Hashable, size: int, from_level: int) -> None:
        """Exclusive: move a lower-level hit up to the fastest live level."""
        top = self._first_up_level()
        if top is None or top >= from_level:
            return  # nowhere faster to go
        self.result.promotions += 1
        lower = self._levels[from_level]
        remover = getattr(lower, "delete", None)
        if callable(remover):
            remover(key)
        # Policies without delete support keep a stale lower copy that
        # ages out naturally (strict exclusivity needs delete;
        # S3FifoRingCache provides it, the others approximate).
        if size <= self._levels[top].capacity:
            self._levels[top].request(Request(key, size=size))

    def _fill_upper(self, key: Hashable, size: int, up_to: int) -> None:
        """Inclusive: copy a hit into every live level above it."""
        for i, level in enumerate(self._levels[:up_to]):
            if self._skip(i):
                continue
            if size <= level.capacity:
                level.request(Request(key, size=size))

    # ------------------------------------------------------------------
    def run(
        self,
        trace: Iterable[Union[Hashable, Tuple[Hashable, int]]],
    ) -> HierarchyResult:
        for item in trace:
            if isinstance(item, tuple):
                self.request(item[0], item[1])
            else:
                self.request(item)
        return self.result

    def __contains__(self, key: Hashable) -> bool:
        return any(key in level for level in self._levels)
