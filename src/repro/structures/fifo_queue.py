"""Ring-buffer FIFO queue.

Section 4.2 of the paper contrasts linked-list and ring-buffer
implementations of FIFO queues: the ring buffer avoids the two
per-object pointers and supports lock-free head/tail bumping.  This
module provides a capacity-checked ring buffer with the same
semantics, including *tombstoning* of deleted slots — the paper notes
deleted objects waste space until the tail pointer passes them.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

_TOMBSTONE = object()


class RingBufferFifo:
    """Fixed-capacity FIFO queue backed by a circular array.

    ``push`` appends at the head; ``pop`` removes the oldest item.
    ``delete`` tombstones an arbitrary slot: the slot keeps consuming a
    position until the tail pointer reaches it, mirroring the space
    behaviour Section 4.2 describes for ring-buffer caches.
    """

    __slots__ = ("_buf", "_capacity", "_head", "_tail", "_live", "_occupied")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._buf: List[Any] = [None] * capacity
        self._head = 0  # next slot to write
        self._tail = 0  # oldest occupied slot
        self._live = 0  # items excluding tombstones
        self._occupied = 0  # items including tombstones

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        """Number of live (non-deleted) items."""
        return self._live

    @property
    def slots_used(self) -> int:
        """Number of occupied slots, including tombstones."""
        return self._occupied

    @property
    def full(self) -> bool:
        return self._occupied == self._capacity

    def push(self, item: Any) -> int:
        """Append ``item``; returns its slot index.

        Raises :class:`OverflowError` when no slot is free — the caller
        must pop (evict) first, exactly as a cache would.
        """
        if item is None:
            raise ValueError("cannot store None in RingBufferFifo")
        if self.full:
            raise OverflowError("ring buffer is full")
        slot = self._head
        self._buf[slot] = item
        self._head = (self._head + 1) % self._capacity
        self._live += 1
        self._occupied += 1
        return slot

    def pop(self) -> Optional[Any]:
        """Remove and return the oldest live item (skipping tombstones).

        Returns ``None`` when the queue holds no live items.  Tombstoned
        slots encountered on the way are reclaimed.
        """
        while self._occupied > 0:
            item = self._buf[self._tail]
            self._buf[self._tail] = None
            self._tail = (self._tail + 1) % self._capacity
            self._occupied -= 1
            if item is _TOMBSTONE:
                continue
            self._live -= 1
            return item
        return None

    def peek(self) -> Optional[Any]:
        """Return the oldest live item without removing it."""
        idx = self._tail
        remaining = self._occupied
        while remaining > 0:
            item = self._buf[idx]
            if item is not _TOMBSTONE:
                return item
            idx = (idx + 1) % self._capacity
            remaining -= 1
        return None

    def delete(self, slot: int) -> None:
        """Tombstone ``slot``.  The slot is reclaimed only when the tail
        pointer passes it (see Section 4.2 on deletions)."""
        if not 0 <= slot < self._capacity:
            raise IndexError(f"slot {slot} out of range")
        item = self._buf[slot]
        if item is None or item is _TOMBSTONE:
            raise KeyError(f"slot {slot} holds no live item")
        self._buf[slot] = _TOMBSTONE
        self._live -= 1

    def __iter__(self) -> Iterator[Any]:
        """Iterate live items from oldest to newest."""
        idx = self._tail
        for _ in range(self._occupied):
            item = self._buf[idx]
            if item is not None and item is not _TOMBSTONE:
                yield item
            idx = (idx + 1) % self._capacity

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RingBufferFifo(capacity={self._capacity}, live={self._live})"
