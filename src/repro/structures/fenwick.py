"""Fenwick (binary indexed) tree — the reuse-distance substrate.

Computing LRU stack distances needs "how many *distinct* keys were
touched since this key's previous access", which is a prefix-sum over
a 0/1 array indexed by time with point updates.  A Fenwick tree gives
both operations in O(log n), making exact miss-ratio-curve
construction O(N log N) (Mattson via last-access marking).
"""

from __future__ import annotations


class FenwickTree:
    """1-indexed Fenwick tree over integers."""

    __slots__ = ("_tree", "_size")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self._size = size
        self._tree = [0] * (size + 1)

    @property
    def size(self) -> int:
        return self._size

    def add(self, index: int, delta: int = 1) -> None:
        """Add ``delta`` at ``index`` (1-based)."""
        if not 1 <= index <= self._size:
            raise IndexError(f"index {index} out of range 1..{self._size}")
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of values in [1, index]; 0 when index <= 0."""
        if index > self._size:
            index = self._size
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of values in [lo, hi] (inclusive, 1-based)."""
        if lo > hi:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)

    def total(self) -> int:
        return self.prefix_sum(self._size)
