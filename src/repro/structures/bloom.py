"""Bloom filters.

B-LRU (Bloom-filter LRU, Section 5.2) admits an object only on its
second request: the first request inserts the key into a Bloom filter
and is rejected.  CDN admission policies (Section 3.2) use the same
trick.  The counting variant supports deletion and is the substrate for
window-based flash-admission baselines.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Tuple


def _optimal_params(expected_items: int, fp_rate: float) -> Tuple[int, int]:
    """Return (number of bits, number of hashes) for the target rate."""
    if expected_items <= 0:
        raise ValueError(f"expected_items must be positive, got {expected_items}")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
    nbits = max(8, int(-expected_items * math.log(fp_rate) / (math.log(2) ** 2)))
    nhashes = max(1, round(nbits / expected_items * math.log(2)))
    return nbits, nhashes


def _indexes(key: Hashable, nhashes: int, nbits: int) -> List[int]:
    """Double hashing (Kirsch–Mitzenmacher): h1 + i*h2 mod m."""
    h = hash(key)
    h1 = h & 0xFFFFFFFF
    h2 = (h >> 32) | 1  # force odd so the stride never degenerates
    return [(h1 + i * h2) % nbits for i in range(nhashes)]


class BloomFilter:
    """A standard Bloom filter with double hashing."""

    __slots__ = ("_bits", "_nbits", "_nhashes", "_count")

    def __init__(self, expected_items: int, fp_rate: float = 0.01) -> None:
        self._nbits, self._nhashes = _optimal_params(expected_items, fp_rate)
        self._bits = bytearray((self._nbits + 7) // 8)
        self._count = 0

    @property
    def num_bits(self) -> int:
        return self._nbits

    @property
    def num_hashes(self) -> int:
        return self._nhashes

    @property
    def count(self) -> int:
        """Number of ``add`` calls for keys not already (apparently) present."""
        return self._count

    def add(self, key: Hashable) -> bool:
        """Insert ``key``; returns True if it was (apparently) new."""
        new = False
        for idx in _indexes(key, self._nhashes, self._nbits):
            byte, bit = divmod(idx, 8)
            if not self._bits[byte] & (1 << bit):
                new = True
                self._bits[byte] |= 1 << bit
        if new:
            self._count += 1
        return new

    def __contains__(self, key: Hashable) -> bool:
        return all(
            self._bits[idx // 8] & (1 << (idx % 8))
            for idx in _indexes(key, self._nhashes, self._nbits)
        )

    def clear(self) -> None:
        self._bits = bytearray(len(self._bits))
        self._count = 0

    def estimated_fp_rate(self) -> float:
        """Current false-positive probability given the fill level."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        fill = set_bits / self._nbits
        return fill**self._nhashes


class CountingBloomFilter:
    """Bloom filter with 4-bit-style counters, supporting removal.

    Counters saturate at ``cap`` and never go negative; ``remove`` on an
    absent key is a no-op on saturated counters (the standard caveat).
    """

    __slots__ = ("_counters", "_nbits", "_nhashes", "_cap")

    def __init__(
        self, expected_items: int, fp_rate: float = 0.01, cap: int = 15
    ) -> None:
        if cap <= 0:
            raise ValueError(f"cap must be positive, got {cap}")
        self._nbits, self._nhashes = _optimal_params(expected_items, fp_rate)
        self._counters = bytearray(self._nbits)
        self._cap = cap

    def add(self, key: Hashable) -> None:
        for idx in _indexes(key, self._nhashes, self._nbits):
            if self._counters[idx] < self._cap:
                self._counters[idx] += 1

    def remove(self, key: Hashable) -> None:
        if key not in self:
            return
        for idx in _indexes(key, self._nhashes, self._nbits):
            if 0 < self._counters[idx] < self._cap:
                self._counters[idx] -= 1

    def __contains__(self, key: Hashable) -> bool:
        return all(
            self._counters[idx] > 0
            for idx in _indexes(key, self._nhashes, self._nbits)
        )

    def estimate(self, key: Hashable) -> int:
        """Minimum counter value across the key's slots (CM-style)."""
        return min(
            self._counters[idx]
            for idx in _indexes(key, self._nhashes, self._nbits)
        )
