"""Ghost queues: FIFO histories of evicted keys (no data).

The paper's ghost queue :math:`\\mathcal{G}` remembers the keys of
objects recently evicted from the small queue so that their *second*
insertion goes straight to the main queue.

Two implementations are provided:

* :class:`GhostFifo` — the straightforward dict+deque version used by
  most policies in this library.
* :class:`GhostCache` — the bucket-hash fingerprint table described in
  Section 4.2: each entry stores a 4-byte hash of the key and the
  logical insertion time; entries older than the queue length are
  treated as absent, and stale slots are reclaimed lazily on collision.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Tuple


class GhostFifo:
    """A FIFO set of keys with a fixed capacity.

    ``add`` inserts a key (moving it to the newest position if already
    present); once more than ``capacity`` keys are held, the oldest is
    dropped.  Membership is O(1).
    """

    __slots__ = ("_capacity", "_queue", "_present", "_stale")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._queue: Deque[Hashable] = deque()
        # Maps key -> number of live occurrences in the deque.  Re-adding
        # a key enqueues it again rather than relocating (FIFO semantics);
        # stale duplicates are skipped when they reach the front.
        self._present: Dict[Hashable, int] = {}
        # Maps key -> number of slots invalidated by remove().  Removal
        # stales every *existing* slot of the key, and those slots are
        # always older than any slot enqueued afterwards, so skipping
        # exactly this many occurrences from the front never touches a
        # live one.
        self._stale: Dict[Hashable, int] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    def set_capacity(self, capacity: int) -> None:
        """Resize the ghost window (evicting oldest entries if shrunk).

        S3-FIFO sizes its ghost at "as many entries as M holds
        objects"; for byte-capacity caches that object count changes
        over time, so the ghost tracks it dynamically.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        while len(self._present) > self._capacity:
            self._evict_oldest()

    def __len__(self) -> int:
        return len(self._present)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._present

    def add(self, key: Hashable) -> None:
        """Insert ``key`` at the ghost queue head."""
        if self._capacity == 0:
            return
        self._queue.append(key)
        self._present[key] = self._present.get(key, 0) + 1
        while len(self._present) > self._capacity:
            self._evict_oldest()

    def remove(self, key: Hashable) -> bool:
        """Forget ``key`` (e.g. when it is re-admitted to the cache).

        Returns whether the key was present.  Its queue slots become
        stale and are skipped during future evictions.
        """
        count = self._present.pop(key, None)
        if count is None:
            return False
        self._stale[key] = self._stale.get(key, 0) + count
        return True

    def _evict_oldest(self) -> None:
        while self._queue:
            key = self._queue.popleft()
            stale = self._stale.get(key)
            if stale:
                if stale == 1:
                    del self._stale[key]
                else:
                    self._stale[key] = stale - 1
                continue  # stale slot of a removed key
            count = self._present.get(key)
            if count is None:
                continue
            if count > 1:
                self._present[key] = count - 1
                continue  # a newer occurrence exists
            del self._present[key]
            return

    def clear(self) -> None:
        self._queue.clear()
        self._present.clear()
        self._stale.clear()


def fingerprint(key: Hashable, bits: int = 32) -> int:
    """A stable ``bits``-bit fingerprint of ``key`` (4 bytes by default,
    as in Section 4.2)."""
    return hash(key) & ((1 << bits) - 1)


class GhostCache:
    """Bucket-based hash table of (fingerprint, insertion-time) pairs.

    This mirrors the implementation sketch in Section 4.2: the ghost
    queue is folded into the index.  An entry is *in* the ghost queue if
    its insertion timestamp is within the last ``capacity`` insertions;
    expired entries are only physically removed when their slot is
    needed (lazy reclamation on hash collision).

    Fingerprints may collide (4 bytes), exactly as in the real system;
    the false-positive probability is negligible at cache scale.
    """

    __slots__ = ("_capacity", "_buckets", "_nbuckets", "_bucket_size", "_insertions")

    def __init__(self, capacity: int, bucket_size: int = 8) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if bucket_size <= 0:
            raise ValueError(f"bucket_size must be positive, got {bucket_size}")
        self._capacity = capacity
        self._bucket_size = bucket_size
        # Enough buckets to hold `capacity` entries at ~50% occupancy.
        self._nbuckets = max(1, (2 * capacity + bucket_size - 1) // bucket_size)
        self._buckets: List[List[Tuple[int, int]]] = [
            [] for _ in range(self._nbuckets)
        ]
        self._insertions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def insertions(self) -> int:
        """Total number of insertions ever performed (the logical clock)."""
        return self._insertions

    def _bucket_of(self, fp: int) -> List[Tuple[int, int]]:
        return self._buckets[fp % self._nbuckets]

    def _expired(self, inserted_at: int) -> bool:
        return self._insertions - inserted_at > self._capacity

    def add(self, key: Hashable) -> None:
        """Record ``key`` as freshly evicted."""
        fp = fingerprint(key)
        self._insertions += 1
        bucket = self._bucket_of(fp)
        for i, (entry_fp, _) in enumerate(bucket):
            if entry_fp == fp:
                bucket[i] = (fp, self._insertions)
                return
        if len(bucket) >= self._bucket_size:
            # Lazy reclamation: drop expired entries; if none, drop oldest.
            bucket[:] = [e for e in bucket if not self._expired(e[1])]
            if len(bucket) >= self._bucket_size:
                oldest = min(range(len(bucket)), key=lambda i: bucket[i][1])
                bucket.pop(oldest)
        bucket.append((fp, self._insertions))

    def __contains__(self, key: Hashable) -> bool:
        fp = fingerprint(key)
        for entry_fp, inserted_at in self._bucket_of(fp):
            if entry_fp == fp:
                return not self._expired(inserted_at)
        return False

    def remove(self, key: Hashable) -> bool:
        """Forget ``key``; returns whether a live entry was present."""
        fp = fingerprint(key)
        bucket = self._bucket_of(fp)
        for i, (entry_fp, inserted_at) in enumerate(bucket):
            if entry_fp == fp:
                bucket.pop(i)
                return not self._expired(inserted_at)
        return False

    def __len__(self) -> int:
        """Number of live (non-expired) entries.  O(table size)."""
        return sum(
            1
            for bucket in self._buckets
            for (_, t) in bucket
            if not self._expired(t)
        )

    def load_factor(self) -> float:
        """Physical occupancy of the table including stale entries."""
        total = sum(len(b) for b in self._buckets)
        return total / (self._nbuckets * self._bucket_size)
