"""Substrate data structures used by the cache policies.

These are the building blocks the paper's implementation relies on
(Section 4.2): intrusive doubly-linked lists, ring-buffer FIFO queues,
a fingerprint bucket-hash ghost table, Bloom filters, and a count-min
sketch.  They are deliberately dependency-free and usable on their own.
"""

from repro.structures.bloom import BloomFilter, CountingBloomFilter
from repro.structures.cms import CountMinSketch
from repro.structures.dlist import DList, DListNode
from repro.structures.fifo_queue import RingBufferFifo
from repro.structures.ghost import GhostCache, GhostFifo

__all__ = [
    "BloomFilter",
    "CountingBloomFilter",
    "CountMinSketch",
    "DList",
    "DListNode",
    "RingBufferFifo",
    "GhostCache",
    "GhostFifo",
]
