"""Intrusive doubly-linked list.

The classic substrate for LRU-family policies.  The list owns sentinel
head/tail nodes so that insertion and unlinking never special-case the
ends.  Nodes are exposed to callers, which keep a ``dict`` from key to
node for O(1) lookup — the same layout as production caches such as
Memcached and Cachelib (two pointers per object, Section 2.2 of the
paper).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class DListNode:
    """A node of :class:`DList` carrying an arbitrary payload."""

    __slots__ = ("prev", "next", "data", "_list")

    def __init__(self, data: Any = None) -> None:
        self.prev: Optional[DListNode] = None
        self.next: Optional[DListNode] = None
        self.data = data
        self._list: Optional[DList] = None

    @property
    def linked(self) -> bool:
        """Whether this node is currently part of a list."""
        return self._list is not None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"DListNode({self.data!r})"


class DList:
    """Doubly-linked list with O(1) head/tail insertion and unlinking.

    The *head* is the most-recently inserted end (MRU for an LRU queue)
    and the *tail* is the eviction end.
    """

    __slots__ = ("_head", "_tail", "_size")

    def __init__(self) -> None:
        # Sentinels: _head.next is the first real node, _tail.prev the last.
        self._head = DListNode()
        self._tail = DListNode()
        self._head.next = self._tail
        self._tail.prev = self._head
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def head(self) -> Optional[DListNode]:
        """The node at the head (most recently inserted), or ``None``."""
        node = self._head.next
        return node if node is not self._tail else None

    @property
    def tail(self) -> Optional[DListNode]:
        """The node at the tail (next eviction candidate), or ``None``."""
        node = self._tail.prev
        return node if node is not self._head else None

    def push_head(self, node: DListNode) -> DListNode:
        """Insert ``node`` at the head.  The node must not be linked."""
        if node.linked:
            raise ValueError("node is already linked to a list")
        first = self._head.next
        assert first is not None
        node.prev = self._head
        node.next = first
        self._head.next = node
        first.prev = node
        node._list = self
        self._size += 1
        return node

    def push_tail(self, node: DListNode) -> DListNode:
        """Insert ``node`` at the tail.  The node must not be linked."""
        if node.linked:
            raise ValueError("node is already linked to a list")
        last = self._tail.prev
        assert last is not None
        node.next = self._tail
        node.prev = last
        self._tail.prev = node
        last.next = node
        node._list = self
        self._size += 1
        return node

    def unlink(self, node: DListNode) -> DListNode:
        """Remove ``node`` from this list and return it."""
        if node._list is not self:
            raise ValueError("node is not linked to this list")
        prev, nxt = node.prev, node.next
        assert prev is not None and nxt is not None
        prev.next = nxt
        nxt.prev = prev
        node.prev = node.next = None
        node._list = None
        self._size -= 1
        return node

    def move_to_head(self, node: DListNode) -> DListNode:
        """Unlink ``node`` and reinsert it at the head (LRU promotion)."""
        self.unlink(node)
        return self.push_head(node)

    def move_to_tail(self, node: DListNode) -> DListNode:
        """Unlink ``node`` and reinsert it at the tail."""
        self.unlink(node)
        return self.push_tail(node)

    def pop_tail(self) -> Optional[DListNode]:
        """Remove and return the tail node, or ``None`` when empty."""
        node = self.tail
        if node is None:
            return None
        return self.unlink(node)

    def pop_head(self) -> Optional[DListNode]:
        """Remove and return the head node, or ``None`` when empty."""
        node = self.head
        if node is None:
            return None
        return self.unlink(node)

    def __iter__(self) -> Iterator[DListNode]:
        """Iterate nodes from head to tail.

        Unlinking the *current* node while iterating is safe; unlinking
        other nodes is not.
        """
        node = self._head.next
        while node is not self._tail:
            assert node is not None
            nxt = node.next
            yield node
            node = nxt

    def iter_from_tail(self) -> Iterator[DListNode]:
        """Iterate nodes from tail to head (eviction-scan order)."""
        node = self._tail.prev
        while node is not self._head:
            assert node is not None
            prev = node.prev
            yield node
            node = prev

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        items = ", ".join(repr(n.data) for n in self)
        return f"DList([{items}])"
