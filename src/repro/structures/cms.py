"""Count-min sketch with periodic aging, the TinyLFU frequency oracle.

TinyLFU (Section 5.2) estimates object popularity with a count-min
sketch whose counters are halved every *sample window* so the estimate
tracks recent popularity.  Counters are capped (4 bits in the original
paper) which also bounds the error introduced by halving.
"""

from __future__ import annotations

from typing import Hashable, List


class CountMinSketch:
    """Conservative count-min sketch with halving-based aging.

    Parameters
    ----------
    width:
        Counters per row.  The original TinyLFU sizes this at roughly
        the cache's object capacity.
    depth:
        Number of rows (independent hash functions).
    cap:
        Saturation value per counter (15 for 4-bit counters).
    sample_size:
        After this many increments all counters are halved ("reset" /
        aging), keeping the sketch fresh.  ``0`` disables aging.
    """

    __slots__ = ("_width", "_depth", "_cap", "_sample", "_rows", "_increments")

    def __init__(
        self,
        width: int,
        depth: int = 4,
        cap: int = 15,
        sample_size: int = 0,
    ) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if cap <= 0:
            raise ValueError(f"cap must be positive, got {cap}")
        if sample_size < 0:
            raise ValueError(f"sample_size must be >= 0, got {sample_size}")
        self._width = width
        self._depth = depth
        self._cap = cap
        self._sample = sample_size
        self._rows: List[bytearray] = [bytearray(width) for _ in range(depth)]
        self._increments = 0

    @property
    def width(self) -> int:
        return self._width

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def increments(self) -> int:
        """Increments since the last aging event."""
        return self._increments

    def _slots(self, key: Hashable) -> List[int]:
        h = hash(key)
        h1 = h & 0xFFFFFFFF
        h2 = (h >> 32) | 1
        return [(h1 + i * h2) % self._width for i in range(self._depth)]

    def add(self, key: Hashable) -> None:
        """Increment the key's counters (conservative update)."""
        slots = self._slots(key)
        current = min(self._rows[i][s] for i, s in enumerate(slots))
        if current < self._cap:
            for i, s in enumerate(slots):
                if self._rows[i][s] == current:
                    self._rows[i][s] += 1
        self._increments += 1
        if self._sample and self._increments >= self._sample:
            self._age()

    def estimate(self, key: Hashable) -> int:
        """Estimated frequency of ``key`` (never underestimates between
        aging events)."""
        return min(
            self._rows[i][s] for i, s in enumerate(self._slots(key))
        )

    def _age(self) -> None:
        """Halve all counters (TinyLFU's reset operation)."""
        for row in self._rows:
            for i, value in enumerate(row):
                row[i] = value >> 1
        self._increments = 0

    def clear(self) -> None:
        for row in self._rows:
            for i in range(self._width):
                row[i] = 0
        self._increments = 0
