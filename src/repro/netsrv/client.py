"""Minimal blocking clients for both wire protocols.

The repo cannot assume ``redis-py`` or ``pymemcache`` exist in the
environment (no new dependencies), and the conformance suite *wants*
raw sockets anyway — goldens are byte-for-byte, so a client library's
niceties would only get in the way.  These clients are therefore
deliberately small: a socket, a receive buffer, and exact framing.

They serve two masters:

* the protocol conformance tests (``tests/test_netsrv_server.py``),
  which mostly speak raw bytes but use these for multi-step flows;
* the load generator's socket mode (loadgen schema 4), which needs
  **pipelining**: :meth:`RespClient.pipeline` writes a whole batch of
  commands in one ``sendall`` and then reads the batch of replies —
  the per-round-trip amortization that the ``pipeline_depth`` axis
  measures.

Error replies (``-ERR ...`` / ``SERVER_ERROR ...``) are returned as
:class:`RespError` / :class:`McError` *values* from pipeline calls so
a batch keeps its positional alignment, and raised from the scalar
convenience methods where there is no alignment to preserve.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["RespClient", "RespError", "McClient", "McError"]

Arg = Union[bytes, str, int, float]


class RespError(Exception):
    """A ``-...`` error reply from the server."""


class McError(Exception):
    """An ``ERROR``/``CLIENT_ERROR``/``SERVER_ERROR`` memcached reply."""


def _to_bytes(arg: Arg) -> bytes:
    if isinstance(arg, bytes):
        return arg
    return str(arg).encode("utf-8", "surrogateescape")


class _SocketReader:
    """A socket plus a receive buffer with exact line/byte reads."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buf = bytearray()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def send(self, payload: bytes) -> None:
        self.sock.sendall(payload)

    def read_line(self) -> bytes:
        """One line without its CRLF; raises on EOF mid-line."""
        while True:
            idx = self._buf.find(b"\r\n")
            if idx >= 0:
                line = bytes(self._buf[:idx])
                del self._buf[:idx + 2]
                return line
            self._fill()

    def read_exact(self, n: int) -> bytes:
        while len(self._buf) < n:
            self._fill()
        out = bytes(self._buf[:n])
        del self._buf[:n]
        return out

    def _fill(self) -> None:
        chunk = self.sock.recv(1 << 16)
        if not chunk:
            raise ConnectionError("server closed the connection")
        self._buf += chunk


class RespClient:
    """A blocking RESP2 client: ``execute`` one command or ``pipeline`` many.

    Replies decode to Python values: simple strings -> ``str``,
    integers -> ``int``, bulk strings -> ``bytes`` (``None`` for the
    null bulk), arrays -> ``list``, errors -> :class:`RespError`
    (returned from :meth:`pipeline`, raised from :meth:`execute`).
    """

    def __init__(self, host: str, port: int, timeout: float = 5.0) -> None:
        self._io = _SocketReader(host, port, timeout)

    def close(self) -> None:
        self._io.close()

    def __enter__(self) -> "RespClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def encode_command(args: Sequence[Arg]) -> bytes:
        parts = [_to_bytes(a) for a in args]
        out = bytearray(b"*" + str(len(parts)).encode() + b"\r\n")
        for part in parts:
            out += b"$" + str(len(part)).encode() + b"\r\n" + part + b"\r\n"
        return bytes(out)

    def execute(self, *args: Arg) -> Any:
        """One command, one reply; error replies raise."""
        self._io.send(self.encode_command(args))
        reply = self._read_reply()
        if isinstance(reply, RespError):
            raise reply
        return reply

    def pipeline(self, commands: Sequence[Sequence[Arg]]) -> List[Any]:
        """Write every command in one syscall, then read every reply."""
        payload = b"".join(self.encode_command(c) for c in commands)
        self._io.send(payload)
        return [self._read_reply() for _ in commands]

    # Convenience wrappers used by tests and the loadgen closed loop.
    def ping(self) -> str:
        return self.execute("PING")

    def get(self, key: Arg) -> Optional[bytes]:
        return self.execute("GET", key)

    def set(self, key: Arg, value: Arg,
            ex: Optional[int] = None) -> str:
        if ex is None:
            return self.execute("SET", key, value)
        return self.execute("SET", key, value, "EX", ex)

    def delete(self, *keys: Arg) -> int:
        return self.execute("DEL", *keys)

    def info(self) -> Dict[str, str]:
        raw = self.execute("INFO")
        out: Dict[str, str] = {}
        for line in raw.decode().splitlines():
            if line and not line.startswith("#") and ":" in line:
                name, _, value = line.partition(":")
                out[name] = value
        return out

    # ------------------------------------------------------------------
    def _read_reply(self) -> Any:
        line = self._io.read_line()
        if not line:
            raise RespError("empty reply line")
        lead, body = line[:1], line[1:]
        if lead == b"+":
            return body.decode("utf-8", "surrogateescape")
        if lead == b"-":
            return RespError(body.decode("utf-8", "surrogateescape"))
        if lead == b":":
            return int(body)
        if lead == b"$":
            length = int(body)
            if length == -1:
                return None
            return self._io.read_exact(length + 2)[:-2]
        if lead == b"*":
            count = int(body)
            if count == -1:
                return None
            return [self._read_reply() for _ in range(count)]
        raise RespError(f"unknown reply type {lead!r}")


class McClient:
    """A blocking memcached text client (the subset the server speaks)."""

    def __init__(self, host: str, port: int, timeout: float = 5.0) -> None:
        self._io = _SocketReader(host, port, timeout)

    def close(self) -> None:
        self._io.close()

    def __enter__(self) -> "McClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        values = self.get_many([key])
        hit = values.get(key)
        return hit[1] if hit is not None else None

    def get_many(self, keys: Sequence[str],
                 with_cas: bool = False) -> Dict[str, Tuple]:
        """Multi-key get -> ``{key: (flags, data[, cas])}`` for hits."""
        verb = "gets" if with_cas else "get"
        self._io.send(f"{verb} {' '.join(keys)}\r\n".encode())
        return self._read_values()

    def set(self, key: str, data: bytes, flags: int = 0,
            exptime: int = 0, noreply: bool = False) -> bool:
        self._io.send(
            f"set {key} {flags} {exptime} {len(data)}"
            f"{' noreply' if noreply else ''}\r\n".encode()
            + data + b"\r\n"
        )
        if noreply:
            return True
        return self._storage_reply() == "STORED"

    def set_many(self, items: Iterable[Tuple[str, bytes]]) -> int:
        """Pipelined sets (one write, then all replies); returns stored."""
        payload = bytearray()
        count = 0
        for key, data in items:
            payload += f"set {key} 0 0 {len(data)}\r\n".encode()
            payload += data + b"\r\n"
            count += 1
        self._io.send(bytes(payload))
        return sum(self._storage_reply() == "STORED" for _ in range(count))

    def delete(self, key: str) -> bool:
        self._io.send(f"delete {key}\r\n".encode())
        return self._storage_reply() == "DELETED"

    def stats(self) -> Dict[str, str]:
        self._io.send(b"stats\r\n")
        out: Dict[str, str] = {}
        while True:
            line = self._io.read_line().decode()
            if line == "END":
                return out
            if line.startswith("STAT "):
                _, name, value = line.split(" ", 2)
                out[name] = value
            else:
                raise McError(line)

    def version(self) -> str:
        self._io.send(b"version\r\n")
        line = self._io.read_line().decode()
        if not line.startswith("VERSION "):
            raise McError(line)
        return line[len("VERSION "):]

    def quit(self) -> None:
        try:
            self._io.send(b"quit\r\n")
        except OSError:
            pass
        self.close()

    # ------------------------------------------------------------------
    def _storage_reply(self) -> str:
        line = self._io.read_line().decode()
        if line.startswith(("ERROR", "CLIENT_ERROR", "SERVER_ERROR")):
            raise McError(line)
        return line

    def _read_values(self) -> Dict[str, Tuple]:
        out: Dict[str, Tuple] = {}
        while True:
            line = self._io.read_line().decode("utf-8", "surrogateescape")
            if line == "END":
                return out
            if not line.startswith("VALUE "):
                raise McError(line)
            parts = line.split(" ")
            key, flags, nbytes = parts[1], int(parts[2]), int(parts[3])
            data = self._io.read_exact(nbytes + 2)[:-2]
            if len(parts) == 5:  # gets: trailing cas token
                out[key] = (flags, data, int(parts[4]))
            else:
                out[key] = (flags, data)
