"""Network front-end: real wire protocols over every cache backend.

This package closes the last gap between "a cache library with a
service layer" and "a cache you can point a stock client at":

* :mod:`repro.netsrv.resp` — incremental RESP2 parser + encoders
  (enough of the Redis protocol for ``redis-cli`` and ``redis-py``).
* :mod:`repro.netsrv.memcached` — incremental memcached text-protocol
  parser (multi-key ``get``/``gets``, ``set``/``delete`` with
  ``noreply``, ``stats``, ``version``, ``quit``).
* :mod:`repro.netsrv.server` — the asyncio :class:`CacheServer`
  speaking both protocols over any backend (thread, sharded, mp
  pipe/shm, cluster), with pipelining, connection limits, idle
  timeouts, graceful drain, fault injection, and ``repro_net_*``
  metrics; :class:`ServerThread` runs it for synchronous callers.
* :mod:`repro.netsrv.client` — minimal blocking clients (no external
  client libraries needed) used by the conformance tests and the
  load generator's socket mode.

See ``docs/NETWORK.md`` for the protocol coverage matrix and drain
semantics.
"""

from repro.netsrv.client import McClient, McError, RespClient, RespError
from repro.netsrv.memcached import (
    RELATIVE_EXPTIME_CEILING,
    McParser,
    McProtocolError,
)
from repro.netsrv.resp import (
    NIL,
    RespParser,
    RespProtocolError,
    encode_array,
    encode_bulk,
    encode_error,
    encode_integer,
    encode_simple,
)
from repro.netsrv.server import (
    PROTOCOLS,
    SERVER_VERSION,
    CacheServer,
    ServerThread,
    exptime_to_ttl,
)

__all__ = [
    "CacheServer",
    "ServerThread",
    "PROTOCOLS",
    "SERVER_VERSION",
    "exptime_to_ttl",
    "RespClient",
    "RespError",
    "McClient",
    "McError",
    "RespParser",
    "RespProtocolError",
    "McParser",
    "McProtocolError",
    "RELATIVE_EXPTIME_CEILING",
    "NIL",
    "encode_simple",
    "encode_error",
    "encode_integer",
    "encode_bulk",
    "encode_array",
]
