"""Asyncio TCP front-end: RESP2 + memcached text over any backend.

This is the step from "library" to "service": stock clients
(``redis-cli``, ``redis-py``, ``pymemcache``, or a bare socket) talk
to any registered cache backend — :class:`~repro.service.core.
CacheService`, :class:`~repro.service.sharded.ShardedCacheService`,
:class:`~repro.service.mp.MPCacheService` over either transport, or
the :class:`~repro.cluster.service.ClusterCacheService` tier — through
one :class:`CacheServer`.

Architecture
------------

One asyncio event loop owns every socket: it **parses** (the
incremental parsers in :mod:`repro.netsrv.resp` /
:mod:`repro.netsrv.memcached` never block on value bytes) and the
backend **evicts** — for the mp backend that is exactly the
"event loop parses, workers evict" split the ROADMAP calls for: the
loop's only blocking work is the IPC round-trip, and the eviction,
hashing, and TTL bookkeeping burn other cores.

Per-connection **pipelining** is free with streaming parsers: every
complete command sitting in one read chunk is executed before the
replies go out in a single ``write``.  Consecutive single-key RESP
``GET`` commands in a pipeline are *fused* into one
``service.get_many`` call — on the mp backend that turns N pipelined
gets into one round-trip per involved worker, the same lever the
batched loadgen path measures.  (Reply order is preserved; the fusion
is invisible on the wire.)

Both protocols interoperate on one store: a value is the pair
``(flags, data)`` so a memcached ``set`` with flags survives a RESP
``GET`` (which returns just the data) and vice versa (RESP ``SET``
stores flags 0).

Lifecycle
---------

``await start()`` binds the listeners (``port=0`` picks an ephemeral
port; the bound port is readable afterwards).  ``await
drain(timeout)`` is the graceful path: stop accepting, wake every
connection, give each one a short grace read to pick up bytes already
in flight, execute and answer everything *accepted* (fully received),
then close — connections still alive past the deadline are cancelled.
No accepted in-flight command is ever dropped by a drain; the
conformance tests pin this under load.  The backend is **not** owned
by the server: callers close it after the drain (for the mp backend
that is the existing phased bounded teardown).

For synchronous callers (tests, the load generator), :class:`
ServerThread` runs the whole lifecycle on a daemon thread:
``start()`` blocks until the ports are bound — re-raising bind
failures in the caller — and ``stop()`` drains and joins.

Faults and observability
------------------------

A :class:`~repro.resilience.faults.FaultPlan` injects network faults
on the server-wide accepted-command clock:
:data:`~repro.resilience.faults.CONN_RESET` aborts the connection
serving the covered command (RST, no reply);
:data:`~repro.resilience.faults.SLOW_CLIENT` stalls ``magnitude``
seconds before that command's reply is written.  Both are
deterministic given the same connection/command arrival order.

With a :class:`~repro.obs.metrics.MetricsRegistry` the server
publishes the ``repro_net_*`` families (per-protocol connection
gauges and accept/reject/error counters, per-command counters and
latency histograms) documented in ``docs/OBSERVABILITY.md``; with no
registry the hot path records nothing.
"""

from __future__ import annotations

import asyncio
import threading
import time
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.netsrv.memcached import (
    RELATIVE_EXPTIME_CEILING,
    McParser,
    McProtocolError,
)
from repro.netsrv.resp import (
    NIL,
    RespParser,
    RespProtocolError,
    encode_array,
    encode_bulk,
    encode_error,
    encode_integer,
    encode_simple,
)
from repro.resilience.faults import CONN_RESET, SLOW_CLIENT
from repro.service.core import RemovalUnsupportedError
from repro.service.mp import WorkerCrashedError

__all__ = ["CacheServer", "ServerThread", "PROTOCOLS"]

PROTOCOLS = ("resp", "memcached")

SERVER_VERSION = "repro-1.0.0"

#: RESP commands with dedicated metric series; anything else lands in
#: the ``other`` bucket (unknown commands still get counted).
_RESP_COMMANDS = ("get", "set", "del", "mget", "mset", "exists", "ping",
                  "echo", "info", "dbsize", "quit", "other")
_MC_COMMANDS = ("get", "gets", "set", "delete", "stats", "version",
                "quit", "other")

_READ_CHUNK = 1 << 16


class _ConnectionState:
    """Per-connection bookkeeping shared by both protocol handlers."""

    __slots__ = ("protocol", "parser", "peer")

    def __init__(self, protocol: str, parser: Any, peer: str) -> None:
        self.protocol = protocol
        self.parser = parser
        self.peer = peer


def exptime_to_ttl(exptime: int) -> Optional[float]:
    """memcached ``exptime`` -> service TTL seconds.

    ``0`` never expires (``None``); positive values at or below 30
    days are relative seconds; larger values are absolute unix
    timestamps (already-past timestamps expire immediately); negative
    values expire immediately (``0``).
    """
    if exptime == 0:
        return None
    if exptime < 0:
        return 0.0
    if exptime <= RELATIVE_EXPTIME_CEILING:
        return float(exptime)
    return max(0.0, exptime - time.time())


class CacheServer:
    """Serve RESP2 and/or memcached text over one cache backend.

    Parameters
    ----------
    service:
        Any object with the service surface (``get``/``set``/
        ``delete``/``get_many``/``set_many``/``delete_many``/
        ``stats``/``__len__``).  Not closed by the server.
    host / resp_port / memcached_port:
        Listeners to open; a ``None`` port disables that protocol,
        ``0`` binds an ephemeral port (read the bound port back from
        :attr:`resp_port` / :attr:`memcached_port` after ``start()``).
    max_connections:
        Accept limit across both protocols; connections over the limit
        are closed immediately (counted in ``repro_net_rejected``).
    idle_timeout:
        Seconds a connection may sit without delivering bytes before
        the server closes it (``None`` = never).
    max_value_size:
        Largest value accepted on either protocol.  RESP bulk strings
        above it are a protocol error (connection closes, like Redis's
        ``proto-max-bulk-len``); memcached sets above it consume the
        data block and answer ``SERVER_ERROR object too large for
        cache`` (connection survives).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` consulted
        on the accepted-command clock (``conn-reset``/``slow-client``).
    drain_grace:
        Seconds of opportunistic reading a draining connection gets to
        pick up commands already on the wire.
    """

    def __init__(
        self,
        service: Any,
        *,
        host: str = "127.0.0.1",
        resp_port: Optional[int] = None,
        memcached_port: Optional[int] = None,
        max_connections: int = 1024,
        idle_timeout: Optional[float] = None,
        max_value_size: int = 1 << 20,
        metrics=None,
        fault_plan=None,
        drain_grace: float = 0.05,
    ) -> None:
        if resp_port is None and memcached_port is None:
            raise ValueError(
                "at least one of resp_port/memcached_port is required"
            )
        if max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError(
                f"idle_timeout must be positive, got {idle_timeout}"
            )
        self.service = service
        self.host = host
        self.resp_port = resp_port
        self.memcached_port = memcached_port
        self.max_connections = max_connections
        self.idle_timeout = idle_timeout
        self.max_value_size = max_value_size
        self.drain_grace = drain_grace
        self._fault_plan = fault_plan
        self._clock = 0  # accepted-command sequence number (fault clock)
        self._servers: List[asyncio.base_events.Server] = []
        self._conn_tasks: set = set()
        self._conn_count = {p: 0 for p in PROTOCOLS}
        self._accepted = {p: 0 for p in PROTOCOLS}
        self._rejected = {p: 0 for p in PROTOCOLS}
        self._proto_errors = {p: 0 for p in PROTOCOLS}
        self._idle_closes = {p: 0 for p in PROTOCOLS}
        self._resets = {p: 0 for p in PROTOCOLS}
        self._draining: Optional[asyncio.Event] = None
        self._started = False
        self._closed = False
        self._cmd_counters: Dict[Tuple[str, str], Any] = {}
        self._cmd_latency: Dict[Tuple[str, str], Any] = {}
        if metrics is not None:
            self._wire_metrics(metrics)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CacheServer":
        """Bind the listeners; ephemeral ports become readable after."""
        if self._started:
            raise RuntimeError("server already started")
        self._draining = asyncio.Event()
        if self.resp_port is not None:
            srv = await asyncio.start_server(
                lambda r, w: self._accept("resp", r, w),
                self.host, self.resp_port,
            )
            self.resp_port = srv.sockets[0].getsockname()[1]
            self._servers.append(srv)
        if self.memcached_port is not None:
            srv = await asyncio.start_server(
                lambda r, w: self._accept("memcached", r, w),
                self.host, self.memcached_port,
            )
            self.memcached_port = srv.sockets[0].getsockname()[1]
            self._servers.append(srv)
        self._started = True
        return self

    async def drain(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, finish accepted work.

        Listeners close first (new connects are refused), then every
        live connection is woken: each gets :attr:`drain_grace`
        seconds of final reads, answers everything fully received, and
        closes.  Connections still running at ``timeout`` are
        cancelled — the bounded deadline the resilience story
        requires.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for srv in self._servers:
            srv.close()
        if self._draining is not None:
            self._draining.set()
        for srv in self._servers:
            await srv.wait_closed()
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    async def aclose(self) -> None:
        """Immediate shutdown (a drain with no deadline to spare)."""
        await self.drain(timeout=0.5)

    @property
    def connections(self) -> int:
        return sum(self._conn_count.values())

    # ------------------------------------------------------------------
    # Accept / per-connection loop
    # ------------------------------------------------------------------
    def _accept(self, protocol: str, reader: asyncio.StreamReader,
                writer: asyncio.StreamWriter) -> None:
        if self._closed or self.connections >= self.max_connections:
            self._rejected[protocol] += 1
            writer.close()
            return
        self._accepted[protocol] += 1
        self._conn_count[protocol] += 1
        task = asyncio.ensure_future(
            self._serve_connection(protocol, reader, writer)
        )
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _serve_connection(self, protocol: str,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        if protocol == "resp":
            parser: Any = RespParser(max_bulk=self.max_value_size)
            execute = self._execute_resp
            proto_error_reply = lambda exc: encode_error(  # noqa: E731
                f"ERR Protocol error: {exc}"
            )
        else:
            parser = McParser(max_value_size=self.max_value_size)
            execute = self._execute_mc
            proto_error_reply = lambda exc: (  # noqa: E731
                f"CLIENT_ERROR {exc}\r\n".encode()
            )
        try:
            while True:
                draining = self._draining.is_set()
                if draining:
                    data = await self._final_read(reader)
                else:
                    data = await self._read(reader)
                    if data is None:  # idle timeout
                        self._idle_closes[protocol] += 1
                        break
                if not data and not draining:
                    if self._draining.is_set():
                        continue  # woken by drain: run the final pass
                    break  # client EOF
                try:
                    commands = parser.feed(data)
                except (RespProtocolError, McProtocolError) as exc:
                    self._proto_errors[protocol] += 1
                    writer.write(proto_error_reply(exc))
                    with _suppress_conn_errors():
                        await writer.drain()
                    break
                keep_open = await self._respond(
                    protocol, commands, execute, writer
                )
                if not keep_open:
                    return  # reset injected: transport already aborted
                if self._draining.is_set() and parser.buffered == 0:
                    break
                if draining:
                    break  # final pass done (answered what arrived)
        except asyncio.CancelledError:
            pass  # drain deadline: the server is done waiting
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away mid-exchange
        finally:
            self._conn_count[protocol] -= 1
            with _suppress_conn_errors():
                writer.close()

    async def _read(self, reader: asyncio.StreamReader) -> Optional[bytes]:
        """One chunk, or ``b""`` on EOF/drain-wake, or ``None`` on idle.

        Waits on the socket *and* the drain event so a draining server
        never sits behind a silent client; the pending read is
        cancelled before any byte is consumed, so nothing is lost.
        """
        read_task = asyncio.ensure_future(reader.read(_READ_CHUNK))
        drain_task = asyncio.ensure_future(self._draining.wait())
        try:
            done, _ = await asyncio.wait(
                {read_task, drain_task},
                timeout=self.idle_timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for task in (read_task, drain_task):
                if not task.done():
                    task.cancel()
            await asyncio.gather(read_task, drain_task,
                                 return_exceptions=True)
        if read_task in done and not read_task.cancelled():
            exc = read_task.exception()
            if exc is not None:
                raise exc
            return read_task.result()
        if drain_task in done:
            return b""  # woken by drain
        return None  # idle timeout

    async def _final_read(self, reader: asyncio.StreamReader) -> bytes:
        """Drain-time grace: collect bytes already in flight."""
        chunks: List[bytes] = []
        deadline = time.monotonic() + self.drain_grace
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                chunk = await asyncio.wait_for(
                    reader.read(_READ_CHUNK), timeout=remaining
                )
            except asyncio.TimeoutError:
                break
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)

    async def _respond(self, protocol: str, commands: List[Any],
                       execute, writer: asyncio.StreamWriter) -> bool:
        """Execute a pipeline; one write unless a fault forces stalls.

        Returns False when a ``conn-reset`` fault aborted the
        connection.  A close-requesting command (QUIT) discards the
        rest of the pipeline, like Redis and memcached both do.
        """
        if not commands:
            return True
        plan = self._fault_plan
        clocked: List[Tuple[Any, int]] = []
        reset_at: Optional[int] = None
        for i, cmd in enumerate(commands):
            self._clock += 1
            clocked.append((cmd, self._clock))
            if (reset_at is None and plan is not None
                    and plan.active(CONN_RESET, self._clock)):
                reset_at = i
        execute_list = clocked if reset_at is None else clocked[:reset_at]
        replies, close = execute(execute_list)
        out: List[bytes] = []
        for (cmd, clock), reply in zip(execute_list, replies):
            if plan is not None:
                window = plan.window(SLOW_CLIENT, clock)
                if window is not None:
                    if out:
                        writer.write(b"".join(out))
                        out = []
                        await writer.drain()
                    await asyncio.sleep(window.magnitude)
            if reply:
                out.append(reply)
        if out:
            writer.write(b"".join(out))
            await writer.drain()
        if reset_at is not None:
            self._resets[protocol] += 1
            writer.transport.abort()  # RST: no FIN, no reply
            return False
        if close:
            with _suppress_conn_errors():
                writer.close()
            raise asyncio.CancelledError  # unwind; finally decrements
        return True

    # ------------------------------------------------------------------
    # RESP execution
    # ------------------------------------------------------------------
    def _execute_resp(
        self, commands: List[Tuple[List[bytes], int]]
    ) -> Tuple[List[bytes], bool]:
        """Replies for a RESP pipeline; fuses runs of single-key GETs.

        The fusion turns N pipelined ``GET`` commands into one
        ``get_many`` (one round-trip per mp worker); every other
        command executes in order, so reply order always matches
        command order.
        """
        replies: List[Optional[bytes]] = [None] * len(commands)
        close = False
        i = 0
        while i < len(commands):
            args = commands[i][0]
            name = args[0].decode("utf-8", "surrogateescape").lower()
            if name == "get" and len(args) == 2:
                j = i
                while (j + 1 < len(commands)
                       and not close
                       and len(commands[j + 1][0]) == 2
                       and commands[j + 1][0][0].lower() == b"get"):
                    j += 1
                if j > i:
                    keys = [self._key(commands[k][0][1])
                            for k in range(i, j + 1)]
                    t0 = time.perf_counter_ns()
                    try:
                        values = self.service.get_many(keys)
                    except WorkerCrashedError as exc:
                        err = encode_error(f"ERR backend: {exc}")
                        values = None
                    if values is None:
                        fused = [err] * len(keys)
                    else:
                        fused = [
                            encode_bulk(v[1]) if v is not None else NIL
                            for v in values
                        ]
                    self._observe("resp", "get", t0, count=len(keys))
                    for k, reply in zip(range(i, j + 1), fused):
                        replies[k] = reply
                    i = j + 1
                    continue
            t0 = time.perf_counter_ns()
            reply, want_close = self._one_resp(name, args)
            self._observe("resp", name if name in _RESP_COMMANDS
                          else "other", t0)
            replies[i] = reply
            if want_close:
                close = True
                replies = replies[:i + 1]
                break
            i += 1
        return [r for r in replies if r is not None], close

    def _one_resp(self, name: str, args: List[bytes]
                  ) -> Tuple[bytes, bool]:
        """One RESP command -> (encoded reply, close-after)."""
        service = self.service
        try:
            if name == "ping":
                if len(args) > 2:
                    return _wrong_args("ping"), False
                return (encode_bulk(args[1]) if len(args) == 2
                        else encode_simple("PONG")), False
            if name == "echo":
                if len(args) != 2:
                    return _wrong_args("echo"), False
                return encode_bulk(args[1]), False
            if name == "get":
                if len(args) != 2:
                    return _wrong_args("get"), False
                value = service.get(self._key(args[1]))
                return (encode_bulk(value[1]) if value is not None
                        else NIL), False
            if name == "set":
                return self._resp_set(args), False
            if name == "del":
                if len(args) < 2:
                    return _wrong_args("del"), False
                deleted = service.delete_many(
                    [self._key(a) for a in args[1:]]
                )
                return encode_integer(sum(deleted)), False
            if name == "exists":
                if len(args) < 2:
                    return _wrong_args("exists"), False
                return encode_integer(
                    sum(self._key(a) in service for a in args[1:])
                ), False
            if name == "mget":
                if len(args) < 2:
                    return _wrong_args("mget"), False
                values = service.get_many(
                    [self._key(a) for a in args[1:]]
                )
                return encode_array([
                    encode_bulk(v[1]) if v is not None else NIL
                    for v in values
                ]), False
            if name == "mset":
                if len(args) < 3 or len(args) % 2 != 1:
                    return _wrong_args("mset"), False
                items = [
                    (self._key(args[i]), (0, args[i + 1]))
                    for i in range(1, len(args), 2)
                ]
                service.set_many(items)
                return encode_simple("OK"), False
            if name == "info":
                return encode_bulk(self._info_payload()), False
            if name == "dbsize":
                return encode_integer(len(service)), False
            if name == "command":
                return encode_array([]), False
            if name in ("client", "select", "reset"):
                return encode_simple("OK"), False
            if name == "quit":
                return encode_simple("OK"), True
            return encode_error(
                f"ERR unknown command '{name}'"
            ), False
        except RemovalUnsupportedError as exc:
            return encode_error(f"ERR {exc}"), False
        except WorkerCrashedError as exc:
            return encode_error(f"ERR backend: {exc}"), False

    def _resp_set(self, args: List[bytes]) -> bytes:
        """``SET key value [EX s | PX ms]`` (the paper-relevant subset)."""
        if len(args) < 3:
            return _wrong_args("set")
        key, value = self._key(args[1]), args[2]
        ttl: Optional[float] = None
        i = 3
        while i < len(args):
            opt = args[i].lower()
            if opt in (b"ex", b"px"):
                if i + 1 >= len(args):
                    return encode_error("ERR syntax error")
                try:
                    amount = int(args[i + 1])
                except ValueError:
                    return encode_error(
                        "ERR value is not an integer or out of range"
                    )
                if amount <= 0:
                    return encode_error(
                        "ERR invalid expire time in 'set' command"
                    )
                ttl = float(amount) if opt == b"ex" else amount / 1000.0
                i += 2
            else:
                return encode_error("ERR syntax error")
        if ttl is None:
            self.service.set(key, (0, value))
        else:
            self.service.set(key, (0, value), ttl=ttl)
        return encode_simple("OK")

    # ------------------------------------------------------------------
    # memcached execution
    # ------------------------------------------------------------------
    def _execute_mc(
        self, commands: List[Tuple[Tuple, int]]
    ) -> Tuple[List[bytes], bool]:
        replies: List[bytes] = []
        close = False
        for cmd, _clock in commands:
            t0 = time.perf_counter_ns()
            verb = cmd[0]
            metric = verb if verb in _MC_COMMANDS else "other"
            reply, want_close = self._one_mc(cmd)
            if verb == "get" and cmd[2]:
                metric = "gets"
            self._observe("memcached", metric, t0,
                          count=len(cmd[1]) if verb == "get" else 1)
            replies.append(reply)
            if want_close:
                close = True
                break
        return replies, close

    def _one_mc(self, cmd: Tuple) -> Tuple[bytes, bool]:
        service = self.service
        verb = cmd[0]
        try:
            if verb == "get":
                _, keys, with_cas = cmd
                values = service.get_many(keys)
                out = bytearray()
                for key, value in zip(keys, values):
                    if value is None:
                        continue
                    flags, data = value
                    head = f"VALUE {key} {flags} {len(data)}"
                    if with_cas:
                        # No real CAS versioning: the token is a
                        # content checksum, stable per stored value.
                        head += f" {zlib.crc32(data)}"
                    out += head.encode("utf-8", "surrogateescape")
                    out += b"\r\n" + data + b"\r\n"
                out += b"END\r\n"
                return bytes(out), False
            if verb == "set":
                _, key, flags, exptime, data, noreply = cmd
                ttl = exptime_to_ttl(exptime)
                if ttl is None:
                    stored = service.set(key, (flags, data))
                else:
                    stored = service.set(key, (flags, data), ttl=ttl)
                if noreply:
                    return b"", False
                return (b"STORED\r\n" if stored
                        else b"NOT_STORED\r\n"), False
            if verb == "too_large":
                _, _key, _nbytes, noreply = cmd
                if noreply:
                    return b"", False
                return b"SERVER_ERROR object too large for cache\r\n", False
            if verb == "delete":
                _, key, noreply = cmd
                deleted = service.delete(key)
                if noreply:
                    return b"", False
                return (b"DELETED\r\n" if deleted
                        else b"NOT_FOUND\r\n"), False
            if verb == "stats":
                stats = service.stats()
                out = bytearray()
                out += f"STAT curr_connections {self.connections}\r\n".encode()
                for name in sorted(stats):
                    out += f"STAT {name} {stats[name]}\r\n".encode()
                out += b"END\r\n"
                return bytes(out), False
            if verb == "version":
                return f"VERSION {SERVER_VERSION}\r\n".encode(), False
            if verb == "quit":
                return b"", True
            if verb == "client_error":
                return f"CLIENT_ERROR {cmd[1]}\r\n".encode(), False
            return b"ERROR\r\n", False
        except RemovalUnsupportedError as exc:
            return f"SERVER_ERROR {exc}\r\n".encode(), False
        except WorkerCrashedError as exc:
            return f"SERVER_ERROR backend: {exc}\r\n".encode(), False

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _key(raw: bytes) -> str:
        """Wire key bytes -> store key (lossless for arbitrary bytes)."""
        return raw.decode("utf-8", "surrogateescape")

    def _info_payload(self) -> bytes:
        """The INFO reply: server section + the backend's real stats()."""
        stats = self.service.stats()
        lines = [
            "# Server",
            f"repro_version:{SERVER_VERSION}",
            f"connected_clients:{self.connections}",
            f"accepted_connections:{sum(self._accepted.values())}",
            "# Cache",
        ]
        for name in sorted(stats):
            value = stats[name]
            if isinstance(value, dict):
                continue  # nested cluster health: not an INFO scalar
            lines.append(f"{name}:{value}")
        return ("\r\n".join(lines) + "\r\n").encode()

    def _observe(self, protocol: str, command: str, t0: int,
                 count: int = 1) -> None:
        counter = self._cmd_counters.get((protocol, command))
        if counter is None:
            return
        counter.inc(count)
        self._cmd_latency[(protocol, command)].observe(
            (time.perf_counter_ns() - t0) / 1000.0
        )

    def _wire_metrics(self, registry) -> None:
        """Publish the ``repro_net_*`` families (docs/OBSERVABILITY.md).

        Gauges and per-connection counters read server state at
        collect time; only the per-command counter/histogram pair is
        written on the hot path, and only because a registry exists.
        """
        for protocol in PROTOCOLS:
            labels = {"protocol": protocol}
            registry.gauge(
                "repro_net_connections",
                "Open client connections.", labels,
            ).set_function(
                lambda p=protocol: self._conn_count[p]
            )
            for name, help_text, source in (
                ("repro_net_accepted",
                 "Connections accepted.", self._accepted),
                ("repro_net_rejected",
                 "Connections refused at the connection limit.",
                 self._rejected),
                ("repro_net_protocol_errors",
                 "Connections closed on a malformed frame.",
                 self._proto_errors),
                ("repro_net_idle_closes",
                 "Connections closed by the idle timeout.",
                 self._idle_closes),
                ("repro_net_resets",
                 "Connections aborted by an injected conn-reset fault.",
                 self._resets),
            ):
                registry.counter(name, help_text, labels).set_function(
                    lambda s=source, p=protocol: s[p]
                )
        for protocol, names in (("resp", _RESP_COMMANDS),
                                ("memcached", _MC_COMMANDS)):
            for command in names:
                labels = {"protocol": protocol, "command": command}
                self._cmd_counters[(protocol, command)] = registry.counter(
                    "repro_net_commands",
                    "Commands served, per protocol and command.",
                    labels,
                )
                self._cmd_latency[(protocol, command)] = registry.histogram(
                    "repro_net_command_latency_us",
                    "Command execution latency in microseconds "
                    "(fused pipeline gets share their batch's latency).",
                    labels,
                )


def _wrong_args(name: str) -> bytes:
    return encode_error(
        f"ERR wrong number of arguments for '{name}' command"
    )


class _suppress_conn_errors:
    """``with`` helper: ignore errors from closing a dead transport."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return exc_type is not None and issubclass(
            exc_type, (ConnectionError, OSError, RuntimeError)
        )


# ----------------------------------------------------------------------
# Synchronous harness
# ----------------------------------------------------------------------
class ServerThread:
    """Run a :class:`CacheServer` on a daemon thread (tests, loadgen).

    ``start()`` blocks until the listeners are bound and re-raises any
    bind failure (``EADDRINUSE`` surfaces in the caller, not on a
    thread nobody joins).  ``stop()`` schedules a graceful drain on
    the loop, waits for it, and joins the thread.  The backing service
    is still not owned here — close it after ``stop()``.
    """

    def __init__(self, service: Any, **server_kwargs: Any) -> None:
        self.server = CacheServer(service, **server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop_requested: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None
        self._drain_timeout = 5.0

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="netsrv", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_requested.wait()
        await self.server.drain(timeout=self._drain_timeout)

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Drain gracefully and join; idempotent."""
        if self._thread is None or not self._thread.is_alive():
            return
        self._drain_timeout = drain_timeout
        loop, stop = self._loop, self._stop_requested
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already gone
        self._thread.join(timeout=drain_timeout + 5.0)

    @property
    def resp_port(self) -> Optional[int]:
        return self.server.resp_port

    @property
    def memcached_port(self) -> Optional[int]:
        return self.server.memcached_port

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
