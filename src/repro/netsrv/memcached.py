"""Incremental memcached text-protocol parser and reply encoders.

The memcached text protocol is line-oriented for commands but
*length*-oriented for values: ``set <key> <flags> <exptime> <bytes>``
is followed by exactly ``<bytes>`` payload bytes and a trailing CRLF.
This parser consumes the payload by its declared count — a value may
contain ``\r\n`` or even look like another command without confusing
the stream — and survives arbitrary chunk boundaries, including one
that lands inside the data block (the conformance tests pin this).

Covered commands: ``get``/``gets`` (multi-key), ``set`` (with
``noreply``), ``delete`` (with ``noreply``), ``stats``, ``version``,
``quit``.  Everything else yields an ``("error",)`` command the server
answers with ``ERROR\r\n`` — the protocol's own unknown-command reply
— while malformed *known* commands yield ``("client_error", msg)``
(answered ``CLIENT_ERROR <msg>\r\n``, connection kept).

An oversized ``set`` is special-cased: the declared payload is larger
than the server will store, but the protocol demands the data block be
consumed anyway (the client has already committed to sending it), so
the parser swallows it in :data:`_SWALLOW` state and then emits a
``("too_large", ...)`` command — the server answers ``SERVER_ERROR
object too large for cache`` without ever buffering the oversized
value.

``exptime`` follows memcached semantics: ``0`` never expires, a
positive value up to 30 days is relative seconds, anything larger is
an absolute unix timestamp, and a negative value expires immediately.
The conversion to a service TTL happens in the server (it owns the
clock); the parser passes the raw integer through.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["McParser", "McProtocolError", "RELATIVE_EXPTIME_CEILING"]

CRLF = b"\r\n"

#: memcached's 30-day threshold: exptime above this is an absolute
#: unix timestamp, at or below it is seconds-from-now.
RELATIVE_EXPTIME_CEILING = 60 * 60 * 24 * 30

# Parser states.
_LINE = 0      # awaiting a command line
_DATA = 1      # awaiting a set payload of _need bytes + CRLF
_SWALLOW = 2   # discarding an oversized payload of _need bytes + CRLF


class McProtocolError(ValueError):
    """The stream is unrecoverably malformed; the connection must close."""


class McParser:
    """Feed bytes, collect complete commands as tagged tuples.

    Emitted command shapes::

        ("get",  [key, ...], with_cas)        # get/gets
        ("set",  key, flags, exptime, data, noreply)
        ("too_large", key, nbytes, noreply)   # oversized set, data eaten
        ("delete", key, noreply)
        ("stats",) / ("version",) / ("quit",)
        ("error",)                            # unknown command line
        ("client_error", message)             # malformed known command

    Keys are ``str`` (decoded utf-8/surrogateescape so arbitrary bytes
    survive); payloads are ``bytes``.
    """

    def __init__(self, max_value_size: int = 1 << 20,
                 max_line: int = 8192, max_keys: int = 1 << 10) -> None:
        self.max_value_size = max_value_size
        self.max_line = max_line
        self.max_keys = max_keys
        self._buf = bytearray()
        self._state = _LINE
        self._need = 0
        self._swallowed = 0
        self._head: Tuple = ()

    def feed(self, data: bytes) -> List[Tuple]:
        self._buf += data
        out: List[Tuple] = []
        while True:
            cmd = self._step()
            if cmd is None:
                break
            out.append(cmd)
        return out

    @property
    def buffered(self) -> int:
        return len(self._buf)

    # ------------------------------------------------------------------
    def _step(self) -> Optional[Tuple]:
        if self._state == _LINE:
            idx = self._buf.find(CRLF)
            if idx < 0:
                if len(self._buf) > self.max_line:
                    raise McProtocolError("command line too long")
                return None
            line = bytes(self._buf[:idx])
            del self._buf[:idx + 2]
            return self._parse_line(line)
        # _DATA / _SWALLOW: the payload plus its CRLF terminator.
        if len(self._buf) < self._need + 2:
            if self._state == _SWALLOW:
                # Discard eagerly: never hold the oversized bytes.
                eat = min(len(self._buf), self._need)
                del self._buf[:eat]
                self._need -= eat
            return None
        payload = bytes(self._buf[:self._need])
        terminator = bytes(self._buf[self._need:self._need + 2])
        del self._buf[:self._need + 2]
        head, self._head = self._head, ()
        swallowing = self._state == _SWALLOW
        self._state = _LINE
        if terminator != CRLF:
            # The client lied about the byte count: stream sync is
            # unrecoverable, so the server answers CLIENT_ERROR bad
            # data chunk and closes.
            raise McProtocolError("bad data chunk")
        if swallowing:
            key, noreply = head
            return ("too_large", key, self._swallowed, noreply)
        key, flags, exptime, noreply = head
        return ("set", key, flags, exptime, payload, noreply)

    def _parse_line(self, line: bytes) -> Optional[Tuple]:
        parts = line.split()
        if not parts:
            return self._step()  # bare CRLF: skip, keep parsing
        verb = parts[0]
        if verb in (b"get", b"gets"):
            keys = [p.decode("utf-8", "surrogateescape") for p in parts[1:]]
            if not keys or len(keys) > self.max_keys:
                return ("client_error", "bad command line format")
            return ("get", keys, verb == b"gets")
        if verb == b"set":
            noreply = parts[-1] == b"noreply"
            fields = parts[1:-1] if noreply else parts[1:]
            if len(fields) != 4:
                return ("client_error", "bad command line format")
            key = fields[0].decode("utf-8", "surrogateescape")
            try:
                flags = int(fields[1])
                exptime = int(fields[2])
                nbytes = int(fields[3])
            except ValueError:
                return ("client_error", "bad command line format")
            if nbytes < 0:
                return ("client_error", "bad command line format")
            if nbytes > self.max_value_size:
                self._state = _SWALLOW
                self._need = nbytes
                self._swallowed = nbytes
                self._head = (key, noreply)
                return self._step()
            self._state = _DATA
            self._need = nbytes
            self._head = (key, flags, exptime, noreply)
            return self._step()
        if verb == b"delete":
            noreply = parts[-1] == b"noreply"
            fields = parts[1:-1] if noreply else parts[1:]
            if len(fields) != 1:
                return ("client_error", "bad command line format")
            return ("delete", fields[0].decode("utf-8", "surrogateescape"),
                    noreply)
        if verb == b"stats":
            return ("stats",)
        if verb == b"version":
            return ("version",)
        if verb == b"quit":
            return ("quit",)
        return ("error",)
