"""Incremental RESP2 wire-protocol parser and reply encoders.

RESP2 is the Redis serialization protocol: a client command is an
array of bulk strings (``*2\r\n$3\r\nGET\r\n$1\r\nk\r\n``), a reply is
one of five typed frames (simple string, error, integer, bulk string,
array).  This module implements exactly the subset a cache front-end
needs, as a *streaming* parser: bytes are fed in arbitrary chunks
(:meth:`RespParser.feed`), complete commands come out, and partial
frames — including partially received bulk payloads — wait in the
buffer without any read-until-newline scanning of value bytes (bulk
payloads are consumed by their declared byte count, so a value may
contain ``\r\n`` freely).

Inline commands (``PING\r\n`` typed into netcat) are supported for
debuggability, exactly like Redis: any line not starting with ``*`` is
split on whitespace.

Protocol errors raise :class:`RespProtocolError`.  Redis's behaviour
on a malformed frame is to reply ``-ERR Protocol error: ...`` and
close the connection; the server does the same, so the parser never
tries to resynchronize a corrupted stream.

Limits are explicit constructor arguments (``max_bulk``,
``max_elements``, ``max_inline``) because they are the only defense a
length-prefixed protocol has against a hostile or broken client
declaring a 2 GiB value.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = [
    "RespParser",
    "RespProtocolError",
    "encode_array",
    "encode_bulk",
    "encode_error",
    "encode_integer",
    "encode_simple",
    "NIL",
]

#: The RESP2 null bulk string (a GET miss).
NIL = b"$-1\r\n"

CRLF = b"\r\n"


class RespProtocolError(ValueError):
    """The byte stream is not valid RESP2; the connection must close."""


# ----------------------------------------------------------------------
# Encoders (replies are tiny; f-string byte building is the clear form)
# ----------------------------------------------------------------------
def encode_simple(text: str) -> bytes:
    """``+OK\r\n`` — status replies; must not contain CR/LF."""
    return b"+" + text.encode("ascii") + CRLF


def encode_error(text: str) -> bytes:
    """``-ERR ...\r\n`` — error replies; CR/LF stripped defensively."""
    clean = text.replace("\r", " ").replace("\n", " ")
    return b"-" + clean.encode("utf-8", "replace") + CRLF


def encode_integer(value: int) -> bytes:
    return b":" + str(value).encode("ascii") + CRLF


def encode_bulk(payload: Optional[bytes]) -> bytes:
    """A bulk string, or the null bulk for ``None`` (cache miss)."""
    if payload is None:
        return NIL
    return b"$" + str(len(payload)).encode("ascii") + CRLF + payload + CRLF


def encode_array(items: List[bytes]) -> bytes:
    """An array whose elements are already-encoded frames."""
    return b"*" + str(len(items)).encode("ascii") + CRLF + b"".join(items)


# ----------------------------------------------------------------------
# Streaming parser
# ----------------------------------------------------------------------
class RespParser:
    """Feed bytes, collect complete commands (lists of ``bytes`` args).

    State machine with three resting states: between commands, inside
    an array header (some bulk elements still outstanding), and inside
    a bulk payload (``_need`` bytes still to arrive).  The buffer holds
    at most one incomplete frame plus unconsumed pipeline bytes.
    """

    def __init__(
        self,
        max_bulk: int = 1 << 20,
        max_elements: int = 1 << 16,
        max_inline: int = 1 << 16,
    ) -> None:
        self.max_bulk = max_bulk
        self.max_elements = max_elements
        self.max_inline = max_inline
        self._buf = bytearray()
        self._pos = 0
        # In-flight array command: remaining element count, collected args.
        self._pending: Optional[List[bytes]] = None
        self._remaining = 0

    def feed(self, data: bytes) -> List[List[bytes]]:
        """Append ``data``; return every command completed by it."""
        self._buf += data
        out: List[List[bytes]] = []
        while True:
            cmd = self._parse_one()
            if cmd is None:
                break
            out.append(cmd)
        # Compact the consumed prefix so pipelined streams don't grow
        # the buffer without bound.
        if self._pos:
            del self._buf[:self._pos]
            self._pos = 0
        return out

    @property
    def buffered(self) -> int:
        """Unconsumed bytes waiting for the rest of a frame."""
        return len(self._buf) - self._pos

    # ------------------------------------------------------------------
    def _readline(self) -> Optional[bytes]:
        """One CRLF-terminated line, or ``None`` if incomplete."""
        idx = self._buf.find(b"\r\n", self._pos)
        if idx < 0:
            if len(self._buf) - self._pos > self.max_inline:
                raise RespProtocolError("too big inline request")
            return None
        line = bytes(self._buf[self._pos:idx])
        self._pos = idx + 2
        return line

    def _parse_bulk(self) -> Optional[bytes]:
        """One ``$<len>\r\n<payload>\r\n`` frame, or ``None`` if short."""
        mark = self._pos
        line = self._readline()
        if line is None:
            return None
        if not line.startswith(b"$"):
            raise RespProtocolError(
                f"expected '$', got {chr(line[0]) if line else ''!r}"
            )
        try:
            length = int(line[1:])
        except ValueError:
            raise RespProtocolError("invalid bulk length") from None
        if length < 0 or length > self.max_bulk:
            raise RespProtocolError("invalid bulk length")
        if len(self._buf) - self._pos < length + 2:
            self._pos = mark  # rewind: wait for the payload
            return None
        payload = bytes(self._buf[self._pos:self._pos + length])
        if self._buf[self._pos + length:self._pos + length + 2] != b"\r\n":
            raise RespProtocolError("bulk payload not CRLF-terminated")
        self._pos += length + 2
        return payload

    def _parse_one(self) -> Optional[List[bytes]]:
        """One complete command, or ``None`` while bytes are missing."""
        # Resume an array whose elements are still arriving.
        if self._pending is not None:
            while self._remaining:
                arg = self._parse_bulk()
                if arg is None:
                    return None
                self._pending.append(arg)
                self._remaining -= 1
            cmd, self._pending = self._pending, None
            return cmd
        if self._pos >= len(self._buf):
            return None
        lead = self._buf[self._pos]
        if lead == ord("*"):
            line = self._readline()
            if line is None:
                return None
            try:
                count = int(line[1:])
            except ValueError:
                raise RespProtocolError("invalid multibulk length") from None
            if count > self.max_elements:
                raise RespProtocolError("invalid multibulk length")
            if count <= 0:
                # Redis treats *0 and *-1 as an empty command: skip it.
                return self._parse_one() if self._pos < len(self._buf) else None
            # The header line is consumed for good; missing elements
            # keep the pending state across feeds (never rewound).
            self._pending = []
            self._remaining = count
            return self._parse_one()
        # Inline command: a plain text line split on whitespace.
        line = self._readline()
        if line is None:
            return None
        parts = line.split()
        if not parts:
            return self._parse_one()
        return [bytes(p) for p in parts]
