"""LHD: Least Hit Density (Beckmann et al., NSDI'18).

LHD estimates each object's *hit density* — the expected hits per unit
of cache space-time it will consume — from online age histograms, and
evicts the lowest-density object among a random sample of residents
(the original uses 64 samples; so do we).

Objects are grouped into classes by their in-cache hit count (0, 1,
2, 3+); each class learns hit/eviction counts per coarsened age bucket
(powers of two) and the densities are recomputed every
``reconfig_interval`` requests with exponential decay of old counts.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request

_NCLASSES = 4
_NBUCKETS = 34  # bit_length of ages up to ~2**33


def _age_bucket(age: int) -> int:
    return min(_NBUCKETS - 1, age.bit_length())


class LhdCache(EvictionPolicy):
    """Sampling-based LHD with per-class age histograms."""

    name = "lhd"

    def __init__(
        self,
        capacity: int,
        samples: int = 64,
        reconfig_interval: int = 0,
        decay: float = 0.9,
        seed: int = 0,
    ) -> None:
        super().__init__(capacity)
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        self._rng = random.Random(seed)
        self._samples = samples
        self._reconfig = reconfig_interval or max(1000, capacity)
        self._decay = decay
        self._entries: Dict[Hashable, CacheEntry] = {}
        self._keys: List[Hashable] = []
        self._pos: Dict[Hashable, int] = {}
        self._hits = [[0.0] * _NBUCKETS for _ in range(_NCLASSES)]
        self._evicts = [[0.0] * _NBUCKETS for _ in range(_NCLASSES)]
        self._density = [[0.0] * _NBUCKETS for _ in range(_NCLASSES)]
        self._since_reconfig = 0
        self._init_densities()

    def _init_densities(self) -> None:
        # Before any data, prefer evicting old, never-hit objects.
        for cls in range(_NCLASSES):
            for bucket in range(_NBUCKETS):
                self._density[cls][bucket] = (cls + 1.0) / (bucket + 1.0)

    @staticmethod
    def _class_of(entry: CacheEntry) -> int:
        return min(_NCLASSES - 1, entry.freq)

    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        self._since_reconfig += 1
        if self._since_reconfig >= self._reconfig:
            self._reconfigure()
        entry = self._entries.get(req.key)
        if entry is not None:
            age = self.clock - entry.last_access
            self._hits[self._class_of(entry)][_age_bucket(age)] += 1
            entry.freq += 1
            entry.last_access = self.clock
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        self._entries[req.key] = entry
        self._pos[req.key] = len(self._keys)
        self._keys.append(req.key)
        self.used += req.size

    def _evict(self) -> None:
        n = len(self._keys)
        assert n > 0, "evicting from an empty LHD cache"
        if n <= self._samples:
            candidates = self._keys  # small cache: exact minimum
        else:
            candidates = [
                self._keys[self._rng.randrange(n)]
                for _ in range(self._samples)
            ]
        best_key = None
        best_density = float("inf")
        for key in candidates:
            entry = self._entries[key]
            age = self.clock - entry.last_access
            density = (
                self._density[self._class_of(entry)][_age_bucket(age)]
                / entry.size
            )
            if density < best_density:
                best_density = density
                best_key = key
        assert best_key is not None
        entry = self._entries.pop(best_key)
        age = self.clock - entry.last_access
        self._evicts[self._class_of(entry)][_age_bucket(age)] += 1
        idx = self._pos.pop(best_key)
        last = self._keys[-1]
        self._keys[idx] = last
        self._pos[last] = idx
        self._keys.pop()
        self.used -= entry.size
        self._notify_evict(entry)

    def _reconfigure(self) -> None:
        """Recompute hit densities from the age histograms.

        density(class, age) = expected future hits / expected future
        space-time, computed by scanning ages from oldest to youngest.
        """
        self._since_reconfig = 0
        for cls in range(_NCLASSES):
            hits = self._hits[cls]
            evicts = self._evicts[cls]
            cum_hits = 0.0
            cum_events = 0.0
            cum_lifetime = 0.0
            for bucket in range(_NBUCKETS - 1, -1, -1):
                events = hits[bucket] + evicts[bucket]
                cum_hits += hits[bucket]
                cum_events += events
                # Mean residual lifetime in bucket units, weighted by
                # how many events end in each (coarse) age bucket.
                cum_lifetime += events * (bucket + 1)
                if cum_lifetime > 0:
                    self._density[cls][bucket] = cum_hits / cum_lifetime
                # else: keep the prior density for this bucket.
            for bucket in range(_NBUCKETS):
                hits[bucket] *= self._decay
                evicts[bucket] *= self._decay

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
