"""Cache eviction policies.

Every policy evaluated in the paper's Section 5 lives here, plus the
offline-optimal Belady policy used in the Section 3 analysis.  All
policies implement the :class:`repro.cache.base.EvictionPolicy`
interface and are registered in :mod:`repro.cache.registry` so the
simulator, benchmarks, and CLI can construct them by name.
"""

from repro.cache.base import CacheEntry, CacheStats, EvictionEvent, EvictionPolicy
from repro.cache.registry import POLICIES, create_policy, policy_names

__all__ = [
    "CacheEntry",
    "CacheStats",
    "EvictionEvent",
    "EvictionPolicy",
    "POLICIES",
    "create_policy",
    "policy_names",
]
