"""Array-backed FIFO: the slot mirror of :class:`repro.cache.fifo.FifoCache`."""

from __future__ import annotations

from array import array

from repro.cache.fast_base import FastPolicyBase, IntRing
from repro.sim.request import Request


class FastFifoCache(FastPolicyBase):
    """Plain FIFO over a ring buffer of slots.

    Bit-identical to ``fifo``: hits touch only the frequency slab,
    misses evict from the ring head until the object fits and push the
    new slot at the tail.
    """

    name = "fifo-fast"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._freq = array("q", bytes(8 * self._slab_cap))
        self._ring = IntRing()

    def _grow_extra(self, add: int) -> None:
        self._freq.frombytes(bytes(8 * add))

    # ------------------------------------------------------------------
    # Streaming path
    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        slot = self._ids.get(req.key)
        if slot is not None and self._loc[slot]:
            self._freq[slot] += 1
            return True
        if slot is None:
            slot = self._intern(req.key)
        self._insert_slot(slot, req.size)
        return False

    # ------------------------------------------------------------------
    # Shared insertion / eviction machinery
    # ------------------------------------------------------------------
    def _insert_slot(self, slot: int, size: int) -> None:
        while self.used + size > self.capacity:
            self._evict_one()
        self._size_of[slot] = size
        self._insert_time[slot] = self.clock
        self._freq[slot] = 0
        self._loc[slot] = 1
        self._ring.push(slot)
        self.used += size
        self._count += 1

    def _evict_one(self) -> None:
        slot = self._ring.pop()
        self._loc[slot] = 0
        self.used -= self._size_of[slot]
        self._count -= 1
        self._notify_evict_slot(slot, self._freq[slot])

    def vector_spec(self):
        """Kernel config for :mod:`repro.sim.vector` (exact type only)."""
        if type(self) is not FastFifoCache:
            return None
        return {"kind": "fifo"}

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def _batch(self, trace, start, stop, tmap):
        keys = trace.key_ids()
        sizes = trace.sizes
        table = trace.key_table
        loc = self._loc
        freq = self._freq
        # clock at absolute request index i is clock0 + i + 1
        clock0 = self.clock - start
        misses = 0
        if sizes is None:
            for i in range(start, stop):
                slot = tmap[keys[i]]
                if slot is not None:
                    if loc[slot]:
                        freq[slot] += 1
                        continue
                else:
                    kid = keys[i]
                    slot = self._intern(table[kid])
                    tmap[kid] = slot
                    if loc[slot]:
                        freq[slot] += 1
                        continue
                misses += 1
                self.clock = clock0 + i + 1
                self._insert_slot(slot, 1)
            requests = stop - start
            self.clock = clock0 + stop
            self._bulk_record(requests, misses, requests, misses)
            return (requests, misses, requests, misses)
        cap = self.capacity
        bytes_requested = 0
        bytes_missed = 0
        for i in range(start, stop):
            kid = keys[i]
            size = sizes[i]
            bytes_requested += size
            if size > cap:
                # Oversized is a miss even when the key is resident, with
                # no metadata update (matches base.request's early return).
                misses += 1
                bytes_missed += size
                continue
            slot = tmap[kid]
            if slot is not None:
                if loc[slot]:
                    freq[slot] += 1
                    continue
            else:
                slot = self._intern(table[kid])
                tmap[kid] = slot
                if loc[slot]:
                    freq[slot] += 1
                    continue
            misses += 1
            bytes_missed += size
            self.clock = clock0 + i + 1
            self._insert_slot(slot, size)
        requests = stop - start
        self.clock = clock0 + stop
        self._bulk_record(requests, misses, bytes_requested, bytes_missed)
        return (requests, misses, bytes_requested, bytes_missed)
