"""Random eviction — the simplest possible baseline."""

from __future__ import annotations

import random
from typing import Dict, Hashable, List

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class RandomCache(EvictionPolicy):
    """Evict a uniformly random resident object.

    Uses the swap-with-last trick on a dense key list for O(1)
    selection and removal.
    """

    name = "random"

    def __init__(self, capacity: int, seed: int = 0) -> None:
        super().__init__(capacity)
        self._rng = random.Random(seed)
        self._entries: Dict[Hashable, CacheEntry] = {}
        self._keys: List[Hashable] = []
        self._pos: Dict[Hashable, int] = {}

    def _access(self, req: Request) -> bool:
        entry = self._entries.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        self._entries[req.key] = CacheEntry(req.key, req.size, self.clock)
        self._pos[req.key] = len(self._keys)
        self._keys.append(req.key)
        self.used += req.size

    def _evict(self) -> None:
        idx = self._rng.randrange(len(self._keys))
        key = self._keys[idx]
        last = self._keys[-1]
        self._keys[idx] = last
        self._pos[last] = idx
        self._keys.pop()
        del self._pos[key]
        entry = self._entries.pop(key)
        self.used -= entry.size
        self._notify_evict(entry)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
