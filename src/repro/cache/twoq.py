"""2Q (Johnson & Shasha, VLDB'94).

The design closest to S3-FIFO (Section 5.2): a FIFO probationary
queue A1in (25% of the cache), a ghost queue A1out (holding metadata
for 50% of the cache's worth of objects), and a main LRU queue Am.
Unlike S3-FIFO, objects evicted from A1in are *not* promoted to Am —
promotion only happens when a request hits the A1out ghost.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request
from repro.structures.ghost import GhostFifo


class TwoQCache(EvictionPolicy):
    """2Q with the paper-standard Kin=25%, Kout=50% parameters."""

    name = "twoq"

    def __init__(
        self,
        capacity: int,
        kin: float = 0.25,
        kout: float = 0.5,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < kin < 1.0:
            raise ValueError(f"kin must be in (0, 1), got {kin}")
        if kout <= 0.0:
            raise ValueError(f"kout must be positive, got {kout}")
        self._a1in_cap = max(1, int(capacity * kin))
        self._a1in: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._a1in_used = 0
        self._a1out = GhostFifo(max(1, int(capacity * kout)))
        self._am: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._am_used = 0

    def _access(self, req: Request) -> bool:
        entry = self._am.pop(req.key, None)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._am[req.key] = entry  # LRU promotion
            return True
        entry = self._a1in.get(req.key)
        if entry is not None:
            # 2Q leaves A1in hits in place (correlated references).
            entry.freq += 1
            entry.last_access = self.clock
            return True
        if req.key in self._a1out:
            self._a1out.remove(req.key)
            self._make_room(req.size)
            entry = CacheEntry(req.key, req.size, self.clock)
            self._am[req.key] = entry
            self._am_used += entry.size
            self.used += entry.size
            return False
        self._make_room(req.size)
        entry = CacheEntry(req.key, req.size, self.clock)
        self._a1in[req.key] = entry
        self._a1in_used += entry.size
        self.used += entry.size
        return False

    def _make_room(self, incoming: int) -> None:
        while self.used + incoming > self.capacity:
            if self._a1in_used > self._a1in_cap or not self._am:
                key, entry = self._a1in.popitem(last=False)
                self._a1in_used -= entry.size
                self._a1out.add(key)
            else:
                key, entry = self._am.popitem(last=False)
                self._am_used -= entry.size
            self.used -= entry.size
            self._notify_evict(entry)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._a1in or key in self._am

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)
