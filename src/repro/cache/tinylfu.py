"""W-TinyLFU (Einziger, Friedman & Manes, ToS'17).

A small *window* LRU (1% of the cache by default) absorbs new objects;
the remaining 99% is an SLRU main cache.  A count-min sketch tracks
approximate frequency of every requested key.  When the window
overflows, the evicted candidate duels the main cache's eviction
victim: the less frequent of the two is discarded.

Section 5.2 evaluates both the default 1% window ("tinylfu") and a 10%
window ("tinylfu-0.1"); the larger window fixes the tail traces where
1% demotes too aggressively, at the cost of the best-case wins.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request
from repro.structures.cms import CountMinSketch


class TinyLfuCache(EvictionPolicy):
    """W-TinyLFU with window LRU + 2-segment SLRU main + CM sketch."""

    name = "tinylfu"

    def __init__(
        self,
        capacity: int,
        window_ratio: float = 0.01,
        protected_ratio: float = 0.8,
        sketch_sample_factor: int = 10,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < window_ratio < 1.0:
            raise ValueError(f"window_ratio must be in (0, 1), got {window_ratio}")
        if not 0.0 < protected_ratio < 1.0:
            raise ValueError(
                f"protected_ratio must be in (0, 1), got {protected_ratio}"
            )
        self._window_cap = max(1, int(capacity * window_ratio))
        main_cap = max(1, capacity - self._window_cap)
        self._protected_cap = max(1, int(main_cap * protected_ratio))
        self._window: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._probation: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._protected: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._window_used = 0
        self._probation_used = 0
        self._protected_used = 0
        self._sketch = CountMinSketch(
            width=max(64, capacity),
            depth=4,
            cap=15,
            sample_size=max(64, capacity) * sketch_sample_factor,
        )

    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        self._sketch.add(req.key)
        entry = self._window.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._window.move_to_end(req.key)
            return True
        entry = self._protected.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._protected.move_to_end(req.key)
            return True
        entry = self._probation.pop(req.key, None)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._probation_used -= entry.size
            self._protected[req.key] = entry
            self._protected_used += entry.size
            self._demote_protected()
            return True
        self._insert(req)
        return False

    # ------------------------------------------------------------------
    def _insert(self, req: Request) -> None:
        entry = CacheEntry(req.key, req.size, self.clock)
        self._window[req.key] = entry
        self._window_used += entry.size
        self.used += entry.size
        while self._window_used > self._window_cap and len(self._window) > 1:
            key, candidate = self._window.popitem(last=False)
            self._window_used -= candidate.size
            self._admit(candidate)
        while self.used > self.capacity:
            self._evict_any()

    def _demote_protected(self) -> None:
        while self._protected_used > self._protected_cap:
            key, entry = self._protected.popitem(last=False)
            self._protected_used -= entry.size
            self._probation[key] = entry
            self._probation_used += entry.size

    def _main_victim(self) -> Optional[CacheEntry]:
        if self._probation:
            return next(iter(self._probation.values()))
        if self._protected:
            return next(iter(self._protected.values()))
        return None

    def _admit(self, candidate: CacheEntry) -> None:
        """The TinyLFU duel: candidate vs. the main cache's victim."""
        main_used = self._probation_used + self._protected_used
        main_cap = self.capacity - self._window_cap
        if main_used + candidate.size <= main_cap:
            self._probation[candidate.key] = candidate
            self._probation_used += candidate.size
            self._notify_demote(candidate, promoted=True)
            return
        victim = self._main_victim()
        if victim is None:
            self._discard(candidate)
            return
        if self._sketch.estimate(candidate.key) > self._sketch.estimate(victim.key):
            while (
                self._probation_used + self._protected_used + candidate.size
                > main_cap
            ):
                loser = self._main_victim()
                if loser is None:
                    break
                self._remove_from_main(loser)
                self._discard(loser)
            self._probation[candidate.key] = candidate
            self._probation_used += candidate.size
            self._notify_demote(candidate, promoted=True)
        else:
            self._notify_demote(candidate, promoted=False)
            self._discard(candidate)

    def _remove_from_main(self, entry: CacheEntry) -> None:
        if entry.key in self._probation:
            del self._probation[entry.key]
            self._probation_used -= entry.size
        else:
            del self._protected[entry.key]
            self._protected_used -= entry.size

    def _discard(self, entry: CacheEntry) -> None:
        self.used -= entry.size
        self._notify_evict(entry)

    def _evict_any(self) -> None:
        """Safety valve for byte-sized workloads where sums overflow."""
        victim = self._main_victim()
        if victim is not None:
            self._remove_from_main(victim)
            self._discard(victim)
            return
        key, entry = self._window.popitem(last=False)
        self._window_used -= entry.size
        self._discard(entry)

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return (
            key in self._window or key in self._probation or key in self._protected
        )

    def __len__(self) -> int:
        return len(self._window) + len(self._probation) + len(self._protected)


class TinyLfu10Cache(TinyLfuCache):
    """TinyLFU with a 10% window — the paper's "TinyLFU-0.1" variant."""

    name = "tinylfu-0.1"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, window_ratio=0.1)
