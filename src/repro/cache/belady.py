"""Belady's offline-optimal eviction (MIN/OPT).

Evicts the resident object whose next request is farthest in the
future (objects never requested again are evicted first).  Requires
traces annotated with ``next_access`` — see
:func:`repro.traces.analysis.annotate_next_access` — which is how the
paper computes the Fig. 4 frequency-at-eviction distribution for
Belady.

For unit-size objects this is exactly optimal; with variable sizes it
is the standard Belady heuristic (true optimality is NP-hard).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Tuple

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class BeladyCache(EvictionPolicy):
    """Offline optimal (farthest-next-use) eviction."""

    name = "belady"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: Dict[Hashable, CacheEntry] = {}
        # Next use per resident key; math.inf when never requested again.
        self._next_use: Dict[Hashable, float] = {}
        # Lazy max-heap of (-next_use, seq, key).
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._seq = 0

    def _push(self, key: Hashable, next_use: float) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (-next_use, self._seq, key))

    def _access(self, req: Request) -> bool:
        next_use = math.inf if req.next_access is None else float(req.next_access)
        entry = self._entries.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._next_use[req.key] = next_use
            self._push(req.key, next_use)
            return True
        # Belady never caches an object with no future use: it would be
        # the immediate next victim anyway.
        if not math.isinf(next_use) or self.used + req.size <= self.capacity:
            self._insert(req, next_use)
        return False

    def _insert(self, req: Request, next_use: float) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        self._entries[req.key] = entry
        self._next_use[req.key] = next_use
        self._push(req.key, next_use)
        self.used += entry.size

    def _evict(self) -> None:
        while self._heap:
            neg_next, _, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is None:
                continue
            if self._next_use.get(key) != -neg_next:
                continue  # stale: the key was re-requested since
            del self._entries[key]
            del self._next_use[key]
            self.used -= entry.size
            self._notify_evict(entry)
            return
        raise RuntimeError("Belady heap exhausted with residents remaining")

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
