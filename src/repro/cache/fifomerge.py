"""FIFO-Merge, the Segcache eviction algorithm (Yang et al., NSDI'21).

Objects live in fixed-size *segments* appended in FIFO order.  When
space is needed, the oldest ``merge_ratio`` segments are merged into
one: the most frequently accessed ``1/merge_ratio`` of their objects
survive (with frequency halved, approximating Segcache's decay) and
the rest are evicted.  Eviction order therefore approximates FIFO at
segment granularity, with popularity-based retention inside a merge —
efficient for web workloads, but not scan-resistant (Section 5.2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class _Segment:
    __slots__ = ("entries", "used")

    def __init__(self) -> None:
        self.entries: List[CacheEntry] = []
        self.used = 0

    def append(self, entry: CacheEntry) -> None:
        self.entries.append(entry)
        self.used += entry.size


class FifoMergeCache(EvictionPolicy):
    """Segment-structured FIFO with merge-based retention."""

    name = "fifomerge"

    def __init__(
        self,
        capacity: int,
        nsegments: int = 64,
        merge_ratio: int = 3,
    ) -> None:
        super().__init__(capacity)
        if nsegments < merge_ratio + 1:
            nsegments = merge_ratio + 1
        if merge_ratio < 2:
            raise ValueError(f"merge_ratio must be >= 2, got {merge_ratio}")
        self._seg_cap = max(1, capacity // nsegments)
        self._merge_ratio = merge_ratio
        self._segments: Deque[_Segment] = deque([_Segment()])
        self._index: Dict[Hashable, CacheEntry] = {}
        self._dead: Dict[Hashable, bool] = {}

    def _access(self, req: Request) -> bool:
        entry = self._index.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._merge_evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        active = self._segments[-1]
        if active.used + entry.size > self._seg_cap and active.entries:
            active = _Segment()
            self._segments.append(active)
        active.append(entry)
        self._index[req.key] = entry
        self.used += entry.size

    def _merge_evict(self) -> None:
        """Merge the oldest ``merge_ratio`` segments, keep the top 1/ratio."""
        merge_count = min(self._merge_ratio, max(1, len(self._segments) - 1))
        victims: List[CacheEntry] = []
        for _ in range(merge_count):
            if len(self._segments) <= 1 and not victims:
                # Only the active segment remains: evict from its front.
                victims.extend(self._segments[0].entries)
                self._segments[0] = _Segment()
                break
            if len(self._segments) > 1:
                victims.extend(self._segments.popleft().entries)
        live = [e for e in victims if self._index.get(e.key) is e]
        live.sort(key=lambda e: e.freq, reverse=True)
        keep_budget = self._seg_cap
        merged = _Segment()
        for entry in live:
            if merge_count > 1 and merged.used + entry.size <= keep_budget and (
                entry.freq > 0
            ):
                entry.freq //= 2  # Segcache-style frequency decay
                merged.append(entry)
            else:
                del self._index[entry.key]
                self.used -= entry.size
                self._notify_evict(entry)
        if merged.entries:
            self._segments.appendleft(merged)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)
