"""Array-backed LRU: the slot mirror of :class:`repro.cache.lru.LruCache`."""

from __future__ import annotations

from array import array

from repro.cache.fast_base import FastPolicyBase, SlabListMixin
from repro.sim.request import Request


class FastLruCache(SlabListMixin, FastPolicyBase):
    """LRU over a slab-allocated intrusive doubly-linked list.

    Bit-identical to ``lru``: every hit promotes the slot to the list
    head, misses evict from the tail until the object fits.  The list
    is two parallel ``array('q')`` columns instead of two pointers per
    node, which is also the layout the paper attributes to production
    caches (Section 2.2) minus the Python objects.
    """

    name = "lru-fast"
    supports_removal = True

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._freq = array("q", bytes(8 * self._slab_cap))
        self._init_list()

    def _grow_extra(self, add: int) -> None:
        self._freq.frombytes(bytes(8 * add))
        self._grow_list(add)

    # ------------------------------------------------------------------
    # Streaming path
    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        slot = self._ids.get(req.key)
        if slot is not None and self._loc[slot]:
            self._freq[slot] += 1
            self._move_to_head(slot)
            return True
        if slot is None:
            slot = self._intern(req.key)
        self._insert_slot(slot, req.size)
        return False

    # ------------------------------------------------------------------
    # Shared insertion / eviction machinery
    # ------------------------------------------------------------------
    def _insert_slot(self, slot: int, size: int) -> None:
        while self.used + size > self.capacity:
            self._evict_one()
        self._size_of[slot] = size
        self._insert_time[slot] = self.clock
        self._freq[slot] = 0
        self._loc[slot] = 1
        self._push_head(slot)
        self.used += size
        self._count += 1

    def remove(self, key) -> bool:
        slot = self._ids.get(key)
        if slot is None or not self._loc[slot]:
            return False
        self._unlink(slot)
        self._loc[slot] = 0
        self.used -= self._size_of[slot]
        self._count -= 1
        return True

    def _evict_one(self) -> None:
        slot = self._ends[1]
        self._unlink(slot)
        self._loc[slot] = 0
        self.used -= self._size_of[slot]
        self._count -= 1
        self._notify_evict_slot(slot, self._freq[slot])

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def _batch(self, trace, start, stop, tmap):
        keys = trace.key_ids()
        sizes = trace.sizes
        table = trace.key_table
        loc = self._loc
        freq = self._freq
        prv = self._prv
        nxt = self._nxt
        ends = self._ends
        cap = self.capacity
        clock0 = self.clock - start
        misses = 0
        bytes_requested = 0
        bytes_missed = 0
        unit = sizes is None
        for i in range(start, stop):
            kid = keys[i]
            size = 1 if unit else sizes[i]
            bytes_requested += size
            if size > cap:
                # Oversized is a miss even when the key is resident, with
                # no metadata update (matches base.request's early return).
                misses += 1
                bytes_missed += size
                continue
            slot = tmap[kid]
            if slot is None:
                slot = self._intern(table[kid])
                tmap[kid] = slot
            if loc[slot]:
                freq[slot] += 1
                head = ends[0]
                if head != slot:
                    # unlink (slot is not the head, so prv[slot] is real)
                    p = prv[slot]
                    n = nxt[slot]
                    nxt[p] = n
                    if n != -1:
                        prv[n] = p
                    else:
                        ends[1] = p
                    # push at head
                    prv[slot] = -1
                    nxt[slot] = head
                    prv[head] = slot
                    ends[0] = slot
                continue
            misses += 1
            bytes_missed += size
            self.clock = clock0 + i + 1
            self._insert_slot(slot, size)
        requests = stop - start
        self.clock = clock0 + stop
        self._bulk_record(requests, misses, bytes_requested, bytes_missed)
        return (requests, misses, bytes_requested, bytes_missed)
