"""CAR: Clock with Adaptive Replacement (Bansal & Modha, FAST'04).

ARC's adaptation married to CLOCK's lock-friendliness: two clocks T1
(recency) and T2 (frequency) with reference bits, two ghost LRU lists
B1/B2, and the same target-size parameter ``p``.  Referenced pages in
T1 graduate to T2 at replacement time instead of being promoted on the
spot, which removes ARC's per-hit list surgery — the same motivation
the S3-FIFO paper pushes to its conclusion.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class _CarEntry(CacheEntry):
    __slots__ = ("ref",)

    def __init__(self, key: Hashable, size: int, insert_time: int) -> None:
        super().__init__(key, size, insert_time)
        self.ref = False


class CarCache(EvictionPolicy):
    """CAR for unit-size objects (clock rotation is slot-based)."""

    name = "car"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._t1: "OrderedDict[Hashable, _CarEntry]" = OrderedDict()
        self._t2: "OrderedDict[Hashable, _CarEntry]" = OrderedDict()
        self._b1: "OrderedDict[Hashable, None]" = OrderedDict()
        self._b2: "OrderedDict[Hashable, None]" = OrderedDict()
        self._p = 0.0

    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        key = req.key
        entry = self._t1.get(key) or self._t2.get(key)
        if entry is not None:
            # Cache hit: just set the reference bit (no list movement).
            entry.ref = True
            entry.freq += 1
            entry.last_access = self.clock
            return True

        if self.used + req.size > self.capacity:
            # With byte sizes one rotation may not free enough space.
            while self.used + req.size > self.capacity and (
                self._t1 or self._t2
            ):
                self._replace()
            # Directory maintenance (the CAR paper's history bounds).
            if key not in self._b1 and key not in self._b2:
                if len(self._t1) + len(self._b1) >= self.capacity:
                    self._discard_oldest(self._b1)
                elif (
                    len(self._t1) + len(self._t2)
                    + len(self._b1) + len(self._b2)
                    >= 2 * self.capacity
                ):
                    self._discard_oldest(self._b2)

        entry = _CarEntry(key, req.size, self.clock)
        if key in self._b1:
            # History hit in B1: favour recency, insert to T2's tail.
            self._p = min(
                float(self.capacity),
                self._p + max(1.0, len(self._b2) / max(1, len(self._b1))),
            )
            del self._b1[key]
            self._t2[key] = entry
        elif key in self._b2:
            self._p = max(
                0.0,
                self._p - max(1.0, len(self._b1) / max(1, len(self._b2))),
            )
            del self._b2[key]
            self._t2[key] = entry
        else:
            self._t1[key] = entry
        self.used += entry.size
        return False

    # ------------------------------------------------------------------
    def _discard_oldest(self, history: "OrderedDict[Hashable, None]") -> None:
        if history:
            history.popitem(last=False)

    def _replace(self) -> None:
        """Rotate the clocks until a page with a clear bit is evicted."""
        while True:
            if self._t1 and len(self._t1) >= max(1.0, self._p):
                key, entry = self._t1.popitem(last=False)
                if entry.ref:
                    # Referenced in T1: graduate to T2's tail.
                    entry.ref = False
                    self._t2[key] = entry
                else:
                    self._b1[key] = None
                    self.used -= entry.size
                    self._notify_demote(entry, promoted=False)
                    self._notify_evict(entry)
                    return
            elif self._t2:
                key, entry = self._t2.popitem(last=False)
                if entry.ref:
                    entry.ref = False
                    self._t2[key] = entry  # second chance within T2
                else:
                    self._b2[key] = None
                    self.used -= entry.size
                    self._notify_evict(entry)
                    return
            elif self._t1:
                # p larger than T1: fall through to T1 anyway.
                key, entry = self._t1.popitem(last=False)
                if entry.ref:
                    entry.ref = False
                    self._t2[key] = entry
                else:
                    self._b1[key] = None
                    self.used -= entry.size
                    self._notify_evict(entry)
                    return
            else:
                return  # nothing resident

    # ------------------------------------------------------------------
    @property
    def target_t1(self) -> float:
        return self._p

    def __contains__(self, key: Hashable) -> bool:
        return key in self._t1 or key in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)
