"""LIRS: Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS'02).

Blocks are classified by reuse distance: LIR (low inter-reference
recency) blocks own ~99% of the cache; HIR blocks pass through a small
(1%) resident queue Q.  The LIRS *stack* S records recency for LIR
blocks, resident HIR blocks, and recently evicted (non-resident) HIR
blocks; a HIR block re-referenced while still on the stack is promoted
to LIR.  The paper (Section 5.2) credits the tiny HIR queue — a quick
demotion mechanism — for LIRS's efficiency.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Hashable, Optional

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request
from repro.structures.dlist import DList, DListNode

_LIR = 0
_HIR_RESIDENT = 1
_HIR_NONRESIDENT = 2


class _LirsRecord:
    __slots__ = ("entry", "status", "stack_node")

    def __init__(self, entry: CacheEntry, status: int) -> None:
        self.entry = entry
        self.status = status
        self.stack_node: Optional[DListNode] = None


class LirsCache(EvictionPolicy):
    """LIRS with a configurable HIR fraction (default 1%).

    Non-resident HIR metadata is bounded at ``nonresident_factor``
    times the resident object count to keep memory proportional to the
    cache, the standard practical mitigation for unbounded stacks.
    """

    name = "lirs"

    def __init__(
        self,
        capacity: int,
        hir_ratio: float = 0.01,
        nonresident_factor: int = 3,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < hir_ratio < 1.0:
            raise ValueError(f"hir_ratio must be in (0, 1), got {hir_ratio}")
        if nonresident_factor < 1:
            raise ValueError(
                f"nonresident_factor must be >= 1, got {nonresident_factor}"
            )
        self._hir_cap = max(1, int(capacity * hir_ratio))
        self._lir_cap = max(1, capacity - self._hir_cap)
        self._stack = DList()
        self._queue: "OrderedDict[Hashable, None]" = OrderedDict()
        self._records: Dict[Hashable, _LirsRecord] = {}
        self._lir_used = 0
        self._resident = 0
        self._nonresident = 0
        self._nonresident_factor = nonresident_factor
        self._nonresident_fifo: Deque[Hashable] = deque()

    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        record = self._records.get(req.key)
        if record is None or record.status == _HIR_NONRESIDENT:
            self._miss(req, record)
            return False
        record.entry.freq += 1
        record.entry.last_access = self.clock
        if record.status == _LIR:
            was_bottom = record.stack_node is self._stack.tail
            self._stack_to_top(record)
            if was_bottom:
                self._prune()
        else:  # resident HIR
            if record.stack_node is not None:
                # On-stack HIR hit: promote to LIR.
                self._stack_to_top(record)
                record.status = _LIR
                del self._queue[req.key]
                self._lir_used += record.entry.size
                self._shrink_lir()
            else:
                # Off-stack HIR hit: refresh recency, stay HIR.
                self._stack_to_top(record)
                self._queue.move_to_end(req.key)
        return True

    # ------------------------------------------------------------------
    def _miss(self, req: Request, record: Optional[_LirsRecord]) -> None:
        # Cold start: fill the LIR partition without evicting (only
        # while the whole cache still has room).
        if (
            record is None
            and self._lir_used + req.size <= self._lir_cap
            and self.used + req.size <= self.capacity
        ):
            entry = CacheEntry(req.key, req.size, self.clock)
            new = _LirsRecord(entry, _LIR)
            self._records[req.key] = new
            self._stack_to_top(new)
            self._lir_used += entry.size
            self.used += entry.size
            self._resident += 1
            return

        self._make_room(req.size)
        # Making room can prune the very non-resident record that
        # routed us here (stack pruning / metadata bounding run inside
        # _make_room); re-fetch so a pruned record falls back to the
        # plain-miss path instead of resurrecting an orphan.
        record = self._records.get(req.key)
        entry = CacheEntry(req.key, req.size, self.clock)
        if record is not None:
            # Non-resident HIR still on the stack: short reuse distance,
            # so it re-enters as LIR.
            self._drop_nonresident_counter(record)
            record.entry = entry
            record.status = _LIR
            self._stack_to_top(record)
            self._lir_used += entry.size
            self.used += entry.size
            self._resident += 1
            self._shrink_lir()
        else:
            new = _LirsRecord(entry, _HIR_RESIDENT)
            self._records[req.key] = new
            self._stack_to_top(new)
            self._queue[req.key] = None
            self.used += entry.size
            self._resident += 1

    # ------------------------------------------------------------------
    def _make_room(self, incoming: int) -> None:
        while self.used + incoming > self.capacity:
            if not self._queue:
                self._shrink_lir(force_one=True)
                if not self._queue:
                    break
            key, _ = self._queue.popitem(last=False)
            record = self._records[key]
            self.used -= record.entry.size
            self._resident -= 1
            self._notify_evict(record.entry)
            if record.stack_node is not None:
                record.status = _HIR_NONRESIDENT
                record.entry = CacheEntry(key, record.entry.size, self.clock)
                self._count_nonresident(key)
            else:
                del self._records[key]

    def _shrink_lir(self, force_one: bool = False) -> None:
        """Demote bottom LIR blocks to HIR until the LIR partition fits."""
        while self._lir_used > self._lir_cap or force_one:
            self._prune()
            bottom = self._stack.tail
            if bottom is None:
                return
            record: _LirsRecord = bottom.data
            if record.status != _LIR:
                return
            force_one = False
            self._stack.unlink(bottom)
            record.stack_node = None
            record.status = _HIR_RESIDENT
            self._lir_used -= record.entry.size
            self._queue[record.entry.key] = None
            self._prune()

    def _prune(self) -> None:
        """Remove non-LIR entries from the stack bottom."""
        while True:
            bottom = self._stack.tail
            if bottom is None:
                return
            record: _LirsRecord = bottom.data
            if record.status == _LIR:
                return
            self._stack.unlink(bottom)
            record.stack_node = None
            if record.status == _HIR_NONRESIDENT:
                self._drop_nonresident_counter(record)
                del self._records[record.entry.key]

    def _stack_to_top(self, record: _LirsRecord) -> None:
        if record.stack_node is not None:
            self._stack.unlink(record.stack_node)
        record.stack_node = self._stack.push_head(DListNode(record))

    # ------------------------------------------------------------------
    # Non-resident metadata bounding
    # ------------------------------------------------------------------
    def _count_nonresident(self, key: Hashable) -> None:
        self._nonresident += 1
        self._nonresident_fifo.append(key)
        limit = max(1024, self._nonresident_factor * max(1, self._resident))
        while self._nonresident > limit and self._nonresident_fifo:
            old = self._nonresident_fifo.popleft()
            record = self._records.get(old)
            if record is None or record.status != _HIR_NONRESIDENT:
                continue
            if record.stack_node is not None:
                self._stack.unlink(record.stack_node)
                record.stack_node = None
            del self._records[old]
            self._nonresident -= 1
            self._prune()

    def _drop_nonresident_counter(self, record: _LirsRecord) -> None:
        if record.status == _HIR_NONRESIDENT:
            self._nonresident -= 1

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        record = self._records.get(key)
        return record is not None and record.status != _HIR_NONRESIDENT

    def __len__(self) -> int:
        return self._resident
