"""LFU eviction with O(1) frequency buckets and LRU tie-breaking."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class LfuCache(EvictionPolicy):
    """Least-Frequently-Used with least-recently-used tie-breaking.

    Frequencies count accesses since insertion (in-cache LFU, the
    variant LeCaR builds on).  Buckets are ordered dicts so the oldest
    object within the minimum-frequency class is evicted first.
    """

    name = "lfu"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: Dict[Hashable, CacheEntry] = {}
        self._buckets: Dict[int, "OrderedDict[Hashable, None]"] = {}
        self._min_freq = 0

    def _bucket(self, freq: int) -> "OrderedDict[Hashable, None]":
        bucket = self._buckets.get(freq)
        if bucket is None:
            bucket = OrderedDict()
            self._buckets[freq] = bucket
        return bucket

    def _access(self, req: Request) -> bool:
        entry = self._entries.get(req.key)
        if entry is not None:
            old = entry.freq
            entry.freq += 1
            entry.last_access = self.clock
            bucket = self._buckets[old]
            del bucket[req.key]
            if not bucket:
                del self._buckets[old]
                if self._min_freq == old:
                    self._min_freq = entry.freq
            self._bucket(entry.freq)[req.key] = None
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        self._entries[req.key] = entry
        self._bucket(0)[req.key] = None
        self._min_freq = 0
        self.used += req.size

    def _evict(self) -> None:
        while self._min_freq not in self._buckets:
            self._min_freq += 1
        bucket = self._buckets[self._min_freq]
        key, _ = bucket.popitem(last=False)
        if not bucket:
            del self._buckets[self._min_freq]
        entry = self._entries.pop(key)
        self.used -= entry.size
        self._notify_evict(entry)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
