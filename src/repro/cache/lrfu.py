"""LRFU: a spectrum between LRU and LFU (Lee et al., ToC'01).

Each object carries a *combined recency and frequency* (CRF) value

    C(t) = sum over past accesses a of (1/2)^(lambda * (t - t_a)),

updated incrementally on access.  ``lam -> 0`` degenerates to LFU,
large ``lam`` to LRU.  Eviction removes the minimum-CRF object.

Because all CRFs decay at the same exponential rate, the relative
order of two objects only changes when one of them is accessed, so an
epoch-normalized score ``log2(C(t_i)) + lam * t_i`` gives a stable sort
key that never overflows; a lazy min-heap over that key yields O(log n)
eviction.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Tuple

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class _LrfuEntry(CacheEntry):
    __slots__ = ("crf", "crf_time", "score")

    def __init__(self, key: Hashable, size: int, insert_time: int) -> None:
        super().__init__(key, size, insert_time)
        self.crf = 1.0
        self.crf_time = insert_time
        self.score = 0.0


class LrfuCache(EvictionPolicy):
    """LRFU with the commonly used lambda = 0.001 default."""

    name = "lrfu"

    def __init__(self, capacity: int, lam: float = 0.001) -> None:
        super().__init__(capacity)
        if lam <= 0:
            raise ValueError(f"lam must be positive, got {lam}")
        self._lam = lam
        self._entries: Dict[Hashable, _LrfuEntry] = {}
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._seq = 0

    def _score(self, entry: _LrfuEntry) -> float:
        """Epoch-normalized sort key (monotone in current CRF)."""
        return math.log2(entry.crf) + self._lam * entry.crf_time

    def _push(self, entry: _LrfuEntry) -> None:
        entry.score = self._score(entry)
        self._seq += 1
        heapq.heappush(self._heap, (entry.score, self._seq, entry.key))

    def _access(self, req: Request) -> bool:
        entry = self._entries.get(req.key)
        if entry is not None:
            # C(t) = C(t_old) * 2^(-lam (t - t_old)) + 1
            decay = 2.0 ** (-self._lam * (self.clock - entry.crf_time))
            entry.crf = entry.crf * decay + 1.0
            entry.crf_time = self.clock
            entry.freq += 1
            entry.last_access = self.clock
            self._push(entry)
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = _LrfuEntry(req.key, req.size, self.clock)
        self._entries[req.key] = entry
        self.used += entry.size
        self._push(entry)

    def _evict(self) -> None:
        while self._heap:
            score, _, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is None or entry.score != score:
                continue  # stale heap record
            del self._entries[key]
            self.used -= entry.size
            self._notify_evict(entry)
            return
        raise RuntimeError("LRFU heap exhausted with residents remaining")

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
