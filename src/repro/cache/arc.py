"""ARC: Adaptive Replacement Cache (Megiddo & Modha, FAST'03).

Four LRU lists: T1 (recent), T2 (frequent) hold data; B1, B2 are their
ghost extensions.  The target size ``p`` of T1 adapts on ghost hits: a
hit in B1 grows p (recency was undervalued), a hit in B2 shrinks it.
Section 6.1 of the S3-FIFO paper analyzes exactly this adaptation and
shows it can drive T1 far too small on workloads like Twitter's.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class ArcCache(EvictionPolicy):
    """Size-aware ARC following the original REPLACE/adaptation rules."""

    name = "arc"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._t1: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._t2: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._b1: "OrderedDict[Hashable, int]" = OrderedDict()  # key -> size
        self._b2: "OrderedDict[Hashable, int]" = OrderedDict()
        self._t1_used = 0
        self._t2_used = 0
        self._b1_used = 0
        self._b2_used = 0
        self._p = 0.0  # target size of T1, in capacity units

    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        key = req.key
        # Case I: hit in T1 or T2 -> move to T2 MRU.
        entry = self._t1.pop(key, None)
        if entry is not None:
            self._t1_used -= entry.size
            entry.freq += 1
            entry.last_access = self.clock
            self._t2[key] = entry
            self._t2_used += entry.size
            self._notify_demote(entry, promoted=True)
            return True
        entry = self._t2.pop(key, None)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._t2[key] = entry  # move to MRU
            return True

        # Case II: ghost hit in B1 -> grow p, place in T2.
        if key in self._b1:
            delta = max(1.0, self._b2_used / max(1, self._b1_used)) * req.size
            self._p = min(float(self.capacity), self._p + delta)
            self._b1_used -= self._b1.pop(key)
            self._replace(in_b2=False, incoming=req.size)
            self._insert_t2(req)
            return False

        # Case III: ghost hit in B2 -> shrink p, place in T2.
        if key in self._b2:
            delta = max(1.0, self._b1_used / max(1, self._b2_used)) * req.size
            self._p = max(0.0, self._p - delta)
            self._b2_used -= self._b2.pop(key)
            self._replace(in_b2=True, incoming=req.size)
            self._insert_t2(req)
            return False

        # Case IV: full miss -> place in T1.
        l1_used = self._t1_used + self._b1_used
        l2_used = self._t2_used + self._b2_used
        if l1_used + req.size > self.capacity:
            # L1 is full: shed from B1 (or evict from T1 when B1 empty).
            while self._b1 and l1_used + req.size > self.capacity:
                _, size = self._b1.popitem(last=False)
                self._b1_used -= size
                l1_used -= size
            self._replace(in_b2=False, incoming=req.size)
        elif l1_used + l2_used + req.size > self.capacity:
            # Directory is over 2c: shed oldest B2 entries.
            while (
                self._b2
                and l1_used + self._t2_used + self._b2_used + req.size
                > 2 * self.capacity
            ):
                _, size = self._b2.popitem(last=False)
                self._b2_used -= size
            self._replace(in_b2=False, incoming=req.size)
        self._insert_t1(req)
        return False

    # ------------------------------------------------------------------
    def _insert_t1(self, req: Request) -> None:
        entry = CacheEntry(req.key, req.size, self.clock)
        self._t1[req.key] = entry
        self._t1_used += entry.size
        self.used += entry.size

    def _insert_t2(self, req: Request) -> None:
        entry = CacheEntry(req.key, req.size, self.clock)
        self._t2[req.key] = entry
        self._t2_used += entry.size
        self.used += entry.size

    def _replace(self, in_b2: bool, incoming: int) -> None:
        """ARC's REPLACE: evict from T1 or T2 until the request fits."""
        while self.used + incoming > self.capacity:
            evict_t1 = self._t1 and (
                self._t1_used > self._p
                or (in_b2 and self._t1_used == int(self._p))
                or not self._t2
            )
            if evict_t1:
                key, entry = self._t1.popitem(last=False)
                self._t1_used -= entry.size
                self._b1[key] = entry.size
                self._b1_used += entry.size
                self._notify_demote(entry, promoted=False)
            else:
                if not self._t2:
                    break
                key, entry = self._t2.popitem(last=False)
                self._t2_used -= entry.size
                self._b2[key] = entry.size
                self._b2_used += entry.size
            self.used -= entry.size
            self._notify_evict(entry)

    # ------------------------------------------------------------------
    @property
    def target_t1(self) -> float:
        """Current adaptive target for T1 (the paper's S-size analogue)."""
        return self._p

    def __contains__(self, key: Hashable) -> bool:
        return key in self._t1 or key in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)
