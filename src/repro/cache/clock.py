"""CLOCK / FIFO-Reinsertion / Second Chance.

The paper (footnote 1) treats FIFO-Reinsertion, Second Chance, and
CLOCK as different implementations of the same algorithm: objects are
evicted in FIFO order unless they were accessed while resident, in
which case they get reinserted with the access bit cleared.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class ClockCache(EvictionPolicy):
    """FIFO with reinsertion controlled by per-object reference bits.

    ``nbits`` generalizes the classic 1-bit CLOCK: on a hit the counter
    saturates at ``2**nbits - 1``; at eviction a non-zero counter is
    decremented and the object is reinserted (CLOCK-with-counters, as
    used e.g. by RocksDB's lock-free clock cache).
    """

    name = "clock"

    def __init__(self, capacity: int, nbits: int = 1) -> None:
        super().__init__(capacity)
        if nbits < 1:
            raise ValueError(f"nbits must be >= 1, got {nbits}")
        self._max_count = (1 << nbits) - 1
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._ref: dict = {}

    def _access(self, req: Request) -> bool:
        entry = self._entries.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            if self._ref[req.key] < self._max_count:
                self._ref[req.key] += 1
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        self._entries[req.key] = entry
        self._ref[req.key] = 0
        self.used += req.size

    def _evict(self) -> None:
        while True:
            key, entry = self._entries.popitem(last=False)
            count = self._ref[key]
            if count > 0:
                # Second chance: decrement and move back to the head.
                self._ref[key] = count - 1
                self._entries[key] = entry
                continue
            del self._ref[key]
            self.used -= entry.size
            self._notify_evict(entry)
            return

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
