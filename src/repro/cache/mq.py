"""MQ: the Multi-Queue replacement algorithm (Zhou, Philbin & Li,
ATC'01), designed for second-level buffer caches.

``m`` LRU queues Q0..Qm-1 hold resident objects; an object with
``f`` lifetime accesses lives in queue ``min(log2(f), m-1)``.  Each
object also carries an expiration time (``now + lifetime``); when the
head of a non-empty queue expires it is demoted one level, letting
once-hot objects age out.  Evicted objects' metadata persists in a
ghost history Qout (4x the cache size here), so a returning object
resumes its old frequency level.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, List, Optional, Tuple

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class _MqEntry(CacheEntry):
    __slots__ = ("level", "expire")

    def __init__(self, key: Hashable, size: int, insert_time: int) -> None:
        super().__init__(key, size, insert_time)
        self.level = 0
        self.expire = 0


class MqCache(EvictionPolicy):
    """MQ with m=8 queues and lifetime-based demotion."""

    name = "mq"

    def __init__(
        self,
        capacity: int,
        num_queues: int = 8,
        lifetime: Optional[int] = None,
        ghost_factor: int = 4,
    ) -> None:
        super().__init__(capacity)
        if num_queues < 2:
            raise ValueError(f"num_queues must be >= 2, got {num_queues}")
        self._m = num_queues
        # The paper sets lifetime to the observed peak temporal distance;
        # a multiple of the cache size is the standard offline-free pick.
        self._lifetime = lifetime or max(16, capacity * 8)
        self._queues: List["OrderedDict[Hashable, _MqEntry]"] = [
            OrderedDict() for _ in range(num_queues)
        ]
        # Ghost: key -> remembered access count.
        self._qout: "OrderedDict[Hashable, int]" = OrderedDict()
        self._qout_cap = max(1, capacity * ghost_factor)

    # ------------------------------------------------------------------
    @staticmethod
    def _level_of(freq: int, m: int) -> int:
        level = 0
        f = max(1, freq)
        while f > 1 and level < m - 1:
            f >>= 1
            level += 1
        return level

    def _access(self, req: Request) -> bool:
        entry = self._find(req.key)
        self._adjust()
        if entry is not None:
            del self._queues[entry.level][req.key]
            entry.freq += 1
            entry.last_access = self.clock
            self._place(entry)
            return True
        remembered = self._qout.pop(req.key, 0)
        while self.used + req.size > self.capacity:
            self._evict()
        entry = _MqEntry(req.key, req.size, self.clock)
        entry.freq = remembered  # resume the pre-eviction frequency
        self._place(entry)
        self.used += entry.size
        return False

    def _find(self, key: Hashable) -> Optional[_MqEntry]:
        for queue in self._queues:
            entry = queue.get(key)
            if entry is not None:
                return entry
        return None

    def _place(self, entry: _MqEntry) -> None:
        entry.level = self._level_of(entry.freq + 1, self._m)
        entry.expire = self.clock + self._lifetime
        self._queues[entry.level][entry.key] = entry

    def _adjust(self) -> None:
        """Demote expired queue heads one level (the MQ Adjust step)."""
        for level in range(self._m - 1, 0, -1):
            queue = self._queues[level]
            if not queue:
                continue
            head_key = next(iter(queue))
            head = queue[head_key]
            if head.expire < self.clock:
                del queue[head_key]
                head.level = level - 1
                head.expire = self.clock + self._lifetime
                self._queues[level - 1][head_key] = head

    def _evict(self) -> None:
        for queue in self._queues:
            if queue:
                key, entry = queue.popitem(last=False)
                self._qout[key] = entry.freq + 1
                while len(self._qout) > self._qout_cap:
                    self._qout.popitem(last=False)
                self.used -= entry.size
                self._notify_evict(entry)
                return
        raise RuntimeError("MQ eviction with no residents")

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return any(key in queue for queue in self._queues)

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues)
