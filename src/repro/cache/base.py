"""Common interface for cache eviction policies.

The contract mirrors libCacheSim's: a policy is constructed with a
capacity (in abstract units — objects for the paper's main evaluation,
bytes for the byte-miss-ratio evaluation) and consumes a stream of
:class:`~repro.sim.request.Request` objects, reporting hit/miss per
request.  Policies emit :class:`EvictionEvent` notifications so that
analyses such as frequency-at-eviction (Fig. 4) and quick-demotion
speed/precision (Fig. 10) can observe them without modifying the
policy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, ClassVar, Hashable, List, Optional

from repro.sim.request import Request


class CacheStats:
    """Hit/miss accounting for one policy run."""

    __slots__ = (
        "requests",
        "hits",
        "misses",
        "bytes_requested",
        "bytes_missed",
        "evictions",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.bytes_requested = 0
        self.bytes_missed = 0
        self.evictions = 0

    def record(self, req: Request, hit: bool) -> None:
        self.requests += 1
        self.bytes_requested += req.size
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self.bytes_missed += req.size

    def as_dict(self) -> dict:
        """All counters as a plain dict (snapshot / sanitizer interchange)."""
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, counters: dict) -> "CacheStats":
        stats = cls()
        for name in cls.__slots__:
            setattr(stats, name, int(counters.get(name, 0)))
        return stats

    def checksum(self) -> str:
        """A stable hex digest of the counters.

        Two stats objects with identical counters — e.g. a snapshot and
        its warm-restarted twin, or two runs of the same fault plan —
        have equal checksums, so tests can compare runs without poking
        ``__slots__`` field by field.
        """
        import zlib

        canonical = ",".join(
            f"{name}={getattr(self, name)}" for name in self.__slots__
        )
        return f"{zlib.crc32(canonical.encode()) & 0xFFFFFFFF:08x}"

    @property
    def miss_ratio(self) -> float:
        """Fraction of requests that missed (the paper's main metric)."""
        return self.misses / self.requests if self.requests else 0.0

    @property
    def byte_miss_ratio(self) -> float:
        """Fraction of requested bytes that missed (Section 5.2.3)."""
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_missed / self.bytes_requested

    def __repr__(self) -> str:
        return (
            f"CacheStats(requests={self.requests}, hits={self.hits}, "
            f"misses={self.misses}, miss_ratio={self.miss_ratio:.4f})"
        )


class CacheEntry:
    """A resident object's metadata.

    ``freq`` counts accesses *after* insertion, capped by the policy if
    it chooses (S3-FIFO caps at 3 to model two bits).
    """

    __slots__ = ("key", "size", "freq", "insert_time", "last_access")

    def __init__(self, key: Hashable, size: int, insert_time: int) -> None:
        self.key = key
        self.size = size
        self.freq = 0
        self.insert_time = insert_time
        self.last_access = insert_time

    def __repr__(self) -> str:
        return f"CacheEntry({self.key!r}, size={self.size}, freq={self.freq})"


class EvictionEvent:
    """Emitted whenever a policy removes an object from the cache."""

    __slots__ = ("key", "size", "freq", "insert_time", "evict_time")

    def __init__(
        self,
        key: Hashable,
        size: int,
        freq: int,
        insert_time: int,
        evict_time: int,
    ) -> None:
        self.key = key
        self.size = size
        self.freq = freq
        self.insert_time = insert_time
        self.evict_time = evict_time

    @property
    def age(self) -> int:
        """Logical time the object spent in the cache."""
        return self.evict_time - self.insert_time

    def __repr__(self) -> str:
        return (
            f"EvictionEvent({self.key!r}, freq={self.freq}, age={self.age})"
        )


EvictionListener = Callable[[EvictionEvent], None]


class DemotionEvent:
    """Emitted when an object leaves a policy's probationary region.

    ``promoted`` distinguishes objects that graduated to the main
    region from objects that were demoted out of the cache.  Only
    policies with an explicit probationary structure (S3-FIFO's S,
    TinyLFU's window, ARC's T1, ...) emit these; Section 6.1's quick
    demotion speed/precision analysis is built on them.
    """

    __slots__ = ("key", "size", "insert_time", "demote_time", "promoted")

    def __init__(
        self,
        key: Hashable,
        size: int,
        insert_time: int,
        demote_time: int,
        promoted: bool,
    ) -> None:
        self.key = key
        self.size = size
        self.insert_time = insert_time
        self.demote_time = demote_time
        self.promoted = promoted

    @property
    def time_in_probation(self) -> int:
        return self.demote_time - self.insert_time

    def __repr__(self) -> str:
        return (
            f"DemotionEvent({self.key!r}, time={self.time_in_probation}, "
            f"promoted={self.promoted})"
        )


DemotionListener = Callable[[DemotionEvent], None]


class EvictionPolicy(ABC):
    """Abstract base class for all eviction policies.

    Subclasses implement :meth:`_access`, returning whether the request
    hit.  The base class maintains the logical clock, statistics, and
    eviction listeners.
    """

    #: Registry / display name ("s3fifo", "lru", ...).
    name: ClassVar[str] = "abstract"

    #: Whether :meth:`remove` is implemented.  Live deletion is not part
    #: of the paper's trace-replay contract, so only the policies the
    #: service layer (:mod:`repro.service`) builds on opt in.
    supports_removal: ClassVar[bool] = False

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self.clock = 0
        self.used = 0
        self._evict_listeners: List[EvictionListener] = []
        self._demote_listeners: List[DemotionListener] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def request(self, req: Request) -> bool:
        """Process one request; returns True on a cache hit."""
        if req.size > self.capacity:
            # An object larger than the whole cache can never be cached;
            # count the miss but do not admit (libCacheSim behaviour).
            self.clock += 1
            self.stats.record(req, False)
            return False
        self.clock += 1
        if req.time == 0:
            req.time = self.clock
        hit = self._access(req)
        self.stats.record(req, hit)
        return hit

    def access(self, key: Hashable, size: int = 1) -> bool:
        """Convenience wrapper building a :class:`Request` for ``key``."""
        return self.request(Request(key, size=size))

    def remove(self, key: Hashable) -> bool:
        """Remove ``key`` from the cache if resident; True when removed.

        Deletion is *not* an eviction: no :class:`EvictionEvent` fires
        and ``stats.evictions`` does not move, because eviction-stream
        analyses (Fig. 4, Fig. 10) must only see policy decisions, not
        external deletes.  Policies that support live deletion set
        ``supports_removal = True`` and override this; the default
        raises so callers can fail loudly rather than corrupt state.
        """
        raise NotImplementedError(
            f"policy {self.name!r} does not support remove(); "
            "see EvictionPolicy.supports_removal"
        )

    def add_eviction_listener(self, listener: EvictionListener) -> None:
        """Register a callback invoked for every eviction."""
        self._evict_listeners.append(listener)

    def add_demotion_listener(self, listener: DemotionListener) -> None:
        """Register a callback for probationary-region exits (if any)."""
        self._demote_listeners.append(listener)

    def instrumented(self, registry, labels=None):
        """This policy wrapped in a metrics-publishing proxy.

        Convenience for
        :class:`~repro.obs.policy.InstrumentedPolicy`: queue depths,
        ghost hits, demotion and eviction streams land in ``registry``
        while the wrapper stays a drop-in replacement for the policy.
        """
        from repro.obs.policy import InstrumentedPolicy

        return InstrumentedPolicy(self, registry, labels)

    @property
    def miss_ratio(self) -> float:
        return self.stats.miss_ratio

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    @abstractmethod
    def _access(self, req: Request) -> bool:
        """Handle one request (admission, promotion, eviction)."""

    @abstractmethod
    def __contains__(self, key: Hashable) -> bool:
        """Whether ``key`` is currently resident (ghost entries excluded)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of resident objects."""

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _notify_evict(self, entry: CacheEntry) -> None:
        self.stats.evictions += 1
        if self._evict_listeners:
            event = EvictionEvent(
                key=entry.key,
                size=entry.size,
                freq=entry.freq,
                insert_time=entry.insert_time,
                evict_time=self.clock,
            )
            for listener in self._evict_listeners:
                listener(event)

    def _notify_demote(self, entry: CacheEntry, promoted: bool) -> None:
        if self._demote_listeners:
            event = DemotionEvent(
                key=entry.key,
                size=entry.size,
                insert_time=entry.insert_time,
                demote_time=self.clock,
                promoted=promoted,
            )
            for listener in self._demote_listeners:
                listener(event)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"used={self.used}, objects={len(self)})"
        )
