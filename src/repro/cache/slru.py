"""Segmented LRU (Karedla et al. 1994).

The paper's configuration (Section 5.2): four equal-sized LRU
segments.  Objects enter the lowest segment; each hit promotes the
object one segment up (to that segment's MRU position).  A segment
that overflows demotes its LRU tail to the segment below; overflow of
the lowest segment evicts.  The initial probationary segment gives
SLRU quick demotion, but the lack of a ghost queue makes it non
scan-tolerant.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request
from repro.structures.dlist import DList, DListNode


class SlruCache(EvictionPolicy):
    """Segmented LRU with ``nsegments`` equal segments (default 4)."""

    name = "slru"

    def __init__(self, capacity: int, nsegments: int = 4) -> None:
        super().__init__(capacity)
        if nsegments < 2:
            raise ValueError(f"nsegments must be >= 2, got {nsegments}")
        # Degrade gracefully for tiny caches: at most one segment per
        # capacity unit (a single segment behaves as plain LRU).
        nsegments = max(1, min(nsegments, capacity))
        self._nseg = nsegments
        base = capacity // nsegments
        # Distribute the remainder onto the highest segments.
        self._seg_capacity = [base] * nsegments
        for i in range(capacity - base * nsegments):
            self._seg_capacity[nsegments - 1 - i] += 1
        self._segments: List[DList] = [DList() for _ in range(nsegments)]
        self._seg_used = [0] * nsegments
        # key -> (segment index, node)
        self._where: Dict[Hashable, Tuple[int, DListNode]] = {}

    def _access(self, req: Request) -> bool:
        loc = self._where.get(req.key)
        if loc is not None:
            seg, node = loc
            entry: CacheEntry = node.data
            entry.freq += 1
            entry.last_access = self.clock
            target = min(seg + 1, self._nseg - 1)
            self._segments[seg].unlink(node)
            self._seg_used[seg] -= entry.size
            self._segments[target].push_head(node)
            self._seg_used[target] += entry.size
            self._where[req.key] = (target, node)
            self._rebalance(target)
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        entry = CacheEntry(req.key, req.size, self.clock)
        node = DListNode(entry)
        self._segments[0].push_head(node)
        self._seg_used[0] += entry.size
        self._where[req.key] = (0, node)
        self.used += entry.size
        self._rebalance(0)
        # Demotions may have overfilled segment 0; evict from its tail.
        while self.used > self.capacity:
            self._evict()

    def _rebalance(self, start: int) -> None:
        """Cascade demotions from ``start`` downwards."""
        for seg in range(start, 0, -1):
            while self._seg_used[seg] > self._seg_capacity[seg]:
                node = self._segments[seg].pop_tail()
                assert node is not None
                entry: CacheEntry = node.data
                self._seg_used[seg] -= entry.size
                self._segments[seg - 1].push_head(node)
                self._seg_used[seg - 1] += entry.size
                self._where[entry.key] = (seg - 1, node)

    def _evict(self) -> None:
        node = self._segments[0].pop_tail()
        if node is None:
            # Pathological: everything sits in higher segments.  Demote.
            for seg in range(1, self._nseg):
                node = self._segments[seg].pop_tail()
                if node is not None:
                    self._seg_used[seg] -= node.data.size
                    break
        else:
            self._seg_used[0] -= node.data.size
        assert node is not None, "evicting from an empty SLRU"
        entry: CacheEntry = node.data
        del self._where[entry.key]
        self.used -= entry.size
        self._notify_evict(entry)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._where

    def __len__(self) -> int:
        return len(self._where)
