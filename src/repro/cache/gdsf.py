"""GDSF: GreedyDual-Size-Frequency (Cherkasova '98; Cao & Irani's
GreedyDual-Size with frequency).

The classic size-aware web/CDN policy: each object's priority is

    H = L + frequency * cost / size

where ``L`` is an inflation value set to the priority of the last
evicted object — aging without touching every entry.  Eviction removes
the minimum-priority object (exact, via a lazy min-heap).
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Tuple

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class _GdsfEntry(CacheEntry):
    __slots__ = ("priority",)

    def __init__(self, key: Hashable, size: int, insert_time: int) -> None:
        super().__init__(key, size, insert_time)
        self.priority = 0.0


class GdsfCache(EvictionPolicy):
    """GDSF with unit miss cost (request-miss-ratio oriented)."""

    name = "gdsf"

    def __init__(self, capacity: int, cost: float = 1.0) -> None:
        super().__init__(capacity)
        if cost <= 0:
            raise ValueError(f"cost must be positive, got {cost}")
        self._cost = cost
        self._inflation = 0.0
        self._entries: Dict[Hashable, _GdsfEntry] = {}
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._seq = 0

    @property
    def inflation(self) -> float:
        """Current aging value L."""
        return self._inflation

    def _push(self, entry: _GdsfEntry) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (entry.priority, self._seq, entry.key))

    def _reprioritize(self, entry: _GdsfEntry) -> None:
        hits = entry.freq + 1  # insertion counts as the first access
        entry.priority = self._inflation + hits * self._cost / entry.size
        self._push(entry)

    def _access(self, req: Request) -> bool:
        entry = self._entries.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._reprioritize(entry)
            return True
        while self.used + req.size > self.capacity:
            self._evict()
        entry = _GdsfEntry(req.key, req.size, self.clock)
        self._entries[req.key] = entry
        self.used += entry.size
        self._reprioritize(entry)
        return False

    def _evict(self) -> None:
        while self._heap:
            priority, _, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is None or entry.priority != priority:
                continue
            self._inflation = priority  # aging: L := H of the victim
            del self._entries[key]
            self.used -= entry.size
            self._notify_evict(entry)
            return
        raise RuntimeError("GDSF heap exhausted with residents remaining")

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
