"""B-LRU: Bloom-filter-admission LRU (Section 5.2).

A Bloom filter in front of an LRU cache rejects every never-seen key:
the first request inserts the key into the filter and misses without
admission; the second request admits the object.  This removes one-hit
wonders perfectly but makes *every* object's second request a miss —
the trade-off the paper highlights.

The filter is rebuilt once it has absorbed ``reset_factor * capacity``
distinct keys, the standard rolling-window approximation.
"""

from __future__ import annotations

from typing import Hashable

from repro.cache.base import EvictionPolicy
from repro.cache.lru import LruCache
from repro.sim.request import Request
from repro.structures.bloom import BloomFilter


class BloomLruCache(EvictionPolicy):
    """LRU with Bloom-filter admission on first touch."""

    name = "blru"

    def __init__(
        self,
        capacity: int,
        fp_rate: float = 0.01,
        reset_factor: int = 8,
    ) -> None:
        super().__init__(capacity)
        if reset_factor <= 0:
            raise ValueError(f"reset_factor must be positive, got {reset_factor}")
        self._lru = LruCache(capacity)
        self._lru.add_eviction_listener(self._forward_eviction)
        self._expected = max(1024, capacity * reset_factor)
        self._fp_rate = fp_rate
        self._filter = BloomFilter(self._expected, fp_rate)

    def _forward_eviction(self, event) -> None:
        self.stats.evictions += 1
        for listener in self._evict_listeners:
            listener(event)

    def _access(self, req: Request) -> bool:
        if req.key in self._lru:
            self._lru.clock = self.clock
            self._lru._access(req)  # promote; hit accounting done by base
            self.used = self._lru.used
            return True
        seen_before = req.key in self._filter
        self._filter.add(req.key)
        if self._filter.count >= self._expected:
            self._filter = BloomFilter(self._expected, self._fp_rate)
        if seen_before:
            self._lru.clock = self.clock
            self._lru._access(req)  # miss path: admit
            self.used = self._lru.used
        return False

    def __contains__(self, key: Hashable) -> bool:
        return key in self._lru

    def __len__(self) -> int:
        return len(self._lru)
