"""Hyperbolic caching (Blankstein, Sen & Freedman, ATC'17).

Each object's priority is ``hits / time-in-cache`` (optionally scaled
by cost/size); the object with the lowest priority is evicted.  Exact
minimum tracking is impossible without reordering on every tick, so —
as in the original system — eviction samples a handful of resident
objects and evicts the worst.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class HyperbolicCache(EvictionPolicy):
    """Sampling-based hyperbolic caching (64-object samples)."""

    name = "hyperbolic"

    def __init__(
        self,
        capacity: int,
        samples: int = 64,
        size_aware: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(capacity)
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        self._samples = samples
        self._size_aware = size_aware
        self._rng = random.Random(seed)
        self._entries: Dict[Hashable, CacheEntry] = {}
        self._keys: List[Hashable] = []
        self._pos: Dict[Hashable, int] = {}

    def _priority(self, entry: CacheEntry) -> float:
        age = max(1, self.clock - entry.insert_time)
        hits = entry.freq + 1  # count the insertion access
        priority = hits / age
        if self._size_aware:
            priority /= entry.size
        return priority

    def _access(self, req: Request) -> bool:
        entry = self._entries.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            return True
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        self._entries[req.key] = entry
        self._pos[req.key] = len(self._keys)
        self._keys.append(req.key)
        self.used += req.size
        return False

    def _evict(self) -> None:
        n = len(self._keys)
        assert n > 0, "evicting from an empty hyperbolic cache"
        victim = None
        worst = float("inf")
        if n <= self._samples:
            candidates = self._keys  # small cache: exact minimum
        else:
            candidates = [
                self._keys[self._rng.randrange(n)]
                for _ in range(self._samples)
            ]
        for key in candidates:
            priority = self._priority(self._entries[key])
            if priority < worst:
                worst = priority
                victim = key
        assert victim is not None
        entry = self._entries.pop(victim)
        idx = self._pos.pop(victim)
        last = self._keys[-1]
        self._keys[idx] = last
        self._pos[last] = idx
        self._keys.pop()
        self.used -= entry.size
        self._notify_evict(entry)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
