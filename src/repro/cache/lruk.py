"""LRU-K (O'Neil, O'Neil & Weikum, SIGMOD'93), with K=2 by default.

Evicts the object whose K-th most recent reference is oldest; objects
with fewer than K references sort before all others (oldest last
access first).  Reference history is retained for recently evicted
objects so a returning object keeps its backward K-distance, as the
original algorithm prescribes.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from typing import Deque, Dict, Hashable, List, Tuple

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class LrukCache(EvictionPolicy):
    """LRU-K with a lazy max-heap over backward K-distances."""

    name = "lruk"

    def __init__(
        self,
        capacity: int,
        k: int = 2,
        history_factor: int = 2,
    ) -> None:
        super().__init__(capacity)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._k = k
        self._entries: Dict[Hashable, CacheEntry] = {}
        # key -> deque of the K most recent access times (resident or not).
        self._history: "OrderedDict[Hashable, Deque[int]]" = OrderedDict()
        self._history_cap = max(16, capacity * history_factor)
        # Lazy min-heap of (kth_time, last_time, seq, key); stale entries
        # are skipped at eviction by comparing against the live history.
        self._heap: List[Tuple[int, int, int, Hashable]] = []
        self._seq = 0

    def _touch_history(self, key: Hashable) -> Deque[int]:
        hist = self._history.get(key)
        if hist is None:
            hist = deque(maxlen=self._k)
            self._history[key] = hist
        else:
            self._history.move_to_end(key)
        hist.append(self.clock)
        attempts = len(self._history)
        while len(self._history) > self._history_cap and attempts > 0:
            attempts -= 1
            old_key, old_hist = self._history.popitem(last=False)
            if old_key in self._entries:
                # Never drop history of a resident object; re-queue it.
                self._history[old_key] = old_hist
        return hist

    def _priority(self, hist: Deque[int]) -> Tuple[int, int]:
        """(kth most recent time or -1, most recent time)."""
        kth = hist[0] if len(hist) == self._k else -1
        return kth, hist[-1]

    def _push_heap(self, key: Hashable, hist: Deque[int]) -> None:
        kth, last = self._priority(hist)
        self._seq += 1
        heapq.heappush(self._heap, (kth, last, self._seq, key))

    def _access(self, req: Request) -> bool:
        hist = self._touch_history(req.key)
        entry = self._entries.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._push_heap(req.key, hist)
            return True
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        self._entries[req.key] = entry
        self.used += entry.size
        self._push_heap(req.key, hist)
        return False

    def _evict(self) -> None:
        while self._heap:
            kth, last, _, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is None:
                continue  # already evicted
            hist = self._history.get(key)
            if hist is None or self._priority(hist) != (kth, last):
                continue  # stale heap entry; a fresher one exists
            del self._entries[key]
            self.used -= entry.size
            self._notify_evict(entry)
            return
        raise RuntimeError("LRU-K heap exhausted with residents remaining")

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
