"""CLOCK-Pro (Jiang, Chen & Zhang, ATC'05).

The CLOCK approximation of LIRS: pages are *hot* or *cold*; cold pages
carry a *test period* during which a re-reference promotes them to
hot.  Metadata of evicted cold pages stays (non-resident, "in test")
so a quick return is detected.  The cold-region size adapts: a hit on a non-resident test page is
evidence that cold pages are evicted too fast, so the cold target
grows (longer test periods); a test page expiring unused shrinks it.

Implementation notes: the original keeps one circular list with three
hands.  This implementation uses the standard queue reformulation
(hot clock, resident-cold queue, non-resident test ghost) that
preserves the algorithm's decisions; the subtle difference is that
hand positions are per-queue rather than shared, which libCacheSim's
version also does.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class _ProEntry(CacheEntry):
    __slots__ = ("ref",)

    def __init__(self, key: Hashable, size: int, insert_time: int) -> None:
        super().__init__(key, size, insert_time)
        self.ref = False


class ClockProCache(EvictionPolicy):
    """CLOCK-Pro with an adaptive cold-page target."""

    name = "clockpro"

    def __init__(self, capacity: int, cold_ratio: float = 0.1) -> None:
        super().__init__(capacity)
        if not 0.0 < cold_ratio < 1.0:
            raise ValueError(f"cold_ratio must be in (0, 1), got {cold_ratio}")
        self._cold_target = max(1, int(capacity * cold_ratio))
        self._hot: "OrderedDict[Hashable, _ProEntry]" = OrderedDict()
        self._cold: "OrderedDict[Hashable, _ProEntry]" = OrderedDict()
        self._test: "OrderedDict[Hashable, None]" = OrderedDict()
        self._hot_used = 0
        self._cold_used = 0

    # ------------------------------------------------------------------
    @property
    def cold_target(self) -> int:
        return self._cold_target

    def _access(self, req: Request) -> bool:
        entry = self._hot.get(req.key) or self._cold.get(req.key)
        if entry is not None:
            entry.ref = True
            entry.freq += 1
            entry.last_access = self.clock
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict_cold()
        entry = _ProEntry(req.key, req.size, self.clock)
        if req.key in self._test:
            # Non-resident test hit: short reuse distance -> hot page,
            # and cold pages deserve more time (grow the cold target).
            del self._test[req.key]
            self._cold_target = min(
                max(1, self.capacity - 1), self._cold_target + 1
            )
            self._hot[req.key] = entry
            self._hot_used += entry.size
            self._rebalance()
        else:
            self._cold[req.key] = entry
            self._cold_used += entry.size
        self.used += entry.size

    # ------------------------------------------------------------------
    def _rebalance(self) -> None:
        """HAND_hot: demote hot pages while the hot region is too big."""
        limit = max(1, self.capacity - self._cold_target)
        while self._hot_used > limit and len(self._hot) > 1:
            key, entry = self._hot.popitem(last=False)
            if entry.ref:
                entry.ref = False
                self._hot[key] = entry  # rotate the hot clock
            else:
                # Demoted hot page becomes a cold page in test period.
                self._cold[key] = entry
                self._hot_used -= entry.size
                self._cold_used += entry.size

    def _evict_cold(self) -> None:
        """HAND_cold: evict the first unreferenced cold page."""
        while True:
            if not self._cold:
                self._force_demote()
                continue
            key, entry = self._cold.popitem(last=False)
            if entry.ref:
                # Re-referenced during its test period: promote to hot.
                entry.ref = False
                self._cold_used -= entry.size
                self._hot[key] = entry
                self._hot_used += entry.size
                self._rebalance()
                continue
            self._cold_used -= entry.size
            self.used -= entry.size
            # Keep non-resident metadata in test; run HAND_test bound.
            self._test[key] = None
            while len(self._test) > self.capacity:
                self._test.popitem(last=False)
                # An expired test means cold pages do not get re-used:
                # shrink the cold region.
                self._cold_target = max(1, self._cold_target - 1)
            self._notify_evict(entry)
            return

    def _force_demote(self) -> None:
        """All pages are hot: demote the hot clock's tail unconditionally
        after one rotation chance."""
        key, entry = self._hot.popitem(last=False)
        if entry.ref:
            entry.ref = False
            self._hot[key] = entry
            key, entry = self._hot.popitem(last=False)
        self._hot_used -= entry.size
        self._cold[key] = entry
        self._cold_used += entry.size

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return key in self._hot or key in self._cold

    def __len__(self) -> int:
        return len(self._hot) + len(self._cold)
