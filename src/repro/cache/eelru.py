"""EELRU: Early Eviction LRU (Smaragdakis, Kaplan & Wilson,
SIGMETRICS'99).

EELRU behaves exactly like LRU until it detects that many faults hit
pages *just beyond* the main memory size (the signature of a looping /
larger-than-memory working set).  It then starts evicting from an
*early* recency position ``e`` instead of the LRU tail, keeping the
distant portion of the loop resident.

Implementation notes: the recency axis is kept as two resident
segments — the MRU region (positions < e) and the early region
(positions e..M) — plus a ghost list for recently evicted pages
(positions M..L).  Faults that hit the ghost are "late region" hits;
resident hits in the early region are "early region" hits.  Eviction
chooses the early point whenever recent late hits outnumber early
hits, which is the EELRU cost-benefit rule specialized to one early
point.  Counts are halved every ``capacity`` requests so the policy
adapts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class EelruCache(EvictionPolicy):
    """EELRU with one early eviction point (default e = capacity/2) and
    a matched-width late region of ghost positions."""

    name = "eelru"

    def __init__(
        self,
        capacity: int,
        early_point: float = 0.5,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < early_point < 1.0:
            raise ValueError(
                f"early_point must be in (0, 1), got {early_point}"
            )
        self._e = max(1, int(capacity * early_point))
        # MRU region: positions [0, e); early region: positions [e, M].
        self._mru: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._early: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._mru_used = 0
        # Late region: ghost positions (M, M + (M - e)] — the SAME
        # width as the early region, so the cost-benefit comparison is
        # apples-to-apples (a decreasing IRM density then keeps the
        # policy in LRU mode, while a loop's density spike beyond M
        # flips it).
        self._ghost: "OrderedDict[Hashable, None]" = OrderedDict()
        self._ghost_cap = max(1, capacity - self._e)
        self._early_hits = 0.0
        self._late_hits = 0.0
        self._since_decay = 0

    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        self._since_decay += 1
        if self._since_decay >= self.capacity:
            self._early_hits /= 2
            self._late_hits /= 2
            self._since_decay = 0

        entry = self._mru.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._mru.move_to_end(req.key)
            return True
        entry = self._early.pop(req.key, None)
        if entry is not None:
            self._early_hits += 1
            entry.freq += 1
            entry.last_access = self.clock
            self._to_mru(entry)
            return True
        if req.key in self._ghost:
            del self._ghost[req.key]
            self._late_hits += 1
        self._insert(req)
        return False

    # ------------------------------------------------------------------
    def _to_mru(self, entry: CacheEntry) -> None:
        self._mru[entry.key] = entry
        self._mru_used += entry.size
        while self._mru_used > self._e and len(self._mru) > 1:
            key, demoted = self._mru.popitem(last=False)
            self._mru_used -= demoted.size
            # Demoted pages enter the early region at its MRU end.
            self._early[key] = demoted

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        self.used += entry.size
        self._to_mru(entry)

    def _evict(self) -> None:
        early_mode = self.early_mode
        if early_mode and self._early:
            # Early eviction: remove the page at recency position e —
            # the *most recent* end of the early region.
            key, entry = self._early.popitem(last=True)
        elif self._early:
            key, entry = self._early.popitem(last=False)  # true LRU tail
        else:
            key, entry = self._mru.popitem(last=False)
            self._mru_used -= entry.size
        self._ghost[key] = None
        while len(self._ghost) > self._ghost_cap:
            self._ghost.popitem(last=False)
        self.used -= entry.size
        self._notify_evict(entry)

    # ------------------------------------------------------------------
    @property
    def early_mode(self) -> bool:
        """Whether the policy is currently evicting early.

        The 1.5x hysteresis keeps EELRU in plain-LRU mode when the two
        regions' hit counts are merely noisy neighbours (IRM traffic),
        while a loop's ghost-hit spike clears it immediately.
        """
        return self._late_hits > 1.5 * self._early_hits + 1.0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._mru or key in self._early

    def __len__(self) -> int:
        return len(self._mru) + len(self._early)
