"""FIFO eviction: evict in insertion order, never reorder on hits."""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class FifoCache(EvictionPolicy):
    """Plain FIFO, the paper's baseline for miss-ratio reduction.

    Cache hits perform no metadata update at all; misses insert at the
    queue head and evict from the tail until the object fits.
    """

    name = "fifo"
    supports_removal = True

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()

    def _access(self, req: Request) -> bool:
        entry = self._entries.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        self._entries[req.key] = entry
        self.used += req.size

    def _evict(self) -> None:
        _, entry = self._entries.popitem(last=False)
        self.used -= entry.size
        self._notify_evict(entry)

    def remove(self, key: Hashable) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.used -= entry.size
        return True

    def vector_spec(self):
        """Kernel config for :mod:`repro.sim.vector` (exact type only —
        subclasses with different behaviour must not inherit it)."""
        if type(self) is not FifoCache:
            return None
        return {"kind": "fifo"}

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
