"""Shared machinery for the array-backed ``*-fast`` policies.

The reference policies allocate a :class:`~repro.cache.base.CacheEntry`
per insertion and store them in dict/linked-list containers — faithful
to the paper's pseudocode, but dominated by Python object overhead when
simulating long traces.  The fast policies keep the *same algorithms*
over preallocated parallel arrays:

* every key ever seen is interned to a dense integer *slot* (slots are
  never recycled; re-insertions reuse the key's slot),
* per-object metadata (size, insertion time, frequency, queue links)
  lives in ``array('q')`` / ``bytearray`` slabs indexed by slot,
* residency is a per-slot location byte, so the hot hit path of a
  compiled-trace run is pure array indexing — no hashing, no object
  allocation, no method dispatch.

Fast policies fully support the streaming :meth:`EvictionPolicy.request`
contract (they are registered policies like any other); the batch entry
point :meth:`FastPolicyBase.run_compiled` additionally consumes a
:class:`~repro.traces.compiled.CompiledTrace` id buffer directly.  Both
paths share the same insertion/eviction machinery — only the trivial
hit path is duplicated (inlined) in the batch loop — so they cannot
drift apart algorithmically; differential tests cover both.

Equality contract: a fast policy must make bit-identical decisions to
its reference twin — same hit/miss result per request, same eviction
sequence (key, size, freq, insert/evict times), same final stats
checksum.  The reference implementations here are all hash-independent
(dict insertion order, never hash order, determines eviction), which is
what makes slot-based mirrors exact.
"""

from __future__ import annotations

from array import array
from typing import Hashable, List, Optional

from repro.cache.base import DemotionEvent, EvictionEvent, EvictionPolicy

if False:  # typing-only; the runtime import is lazy (see _compiled_cls)
    from repro.traces.compiled import CompiledTrace

#: Single-element template used to build -1-filled ``array('q')`` runs.
NEG1 = array("q", [-1])

_COMPILED_CLS = None


def _compiled_cls():
    # Imported lazily: repro.traces pulls in the sweep runner, which
    # imports the registry, which imports this module.
    global _COMPILED_CLS
    if _COMPILED_CLS is None:
        from repro.traces.compiled import CompiledTrace

        _COMPILED_CLS = CompiledTrace
    return _COMPILED_CLS


class IntRing:
    """Growable power-of-two ring buffer of ints.

    FIFO discipline: :meth:`push` appends at the tail (newest),
    :meth:`pop` removes from the head (oldest).  ``pop`` assumes the
    ring is non-empty — callers check ``len`` first, exactly like the
    reference policies check their OrderedDicts.
    """

    __slots__ = ("_buf", "_mask", "_head", "_size")

    def __init__(self, capacity: int = 16) -> None:
        cap = 16
        while cap < capacity:
            cap <<= 1
        self._buf = array("q", bytes(8 * cap))
        self._mask = cap - 1
        self._head = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, value: int) -> None:
        size = self._size
        if size > self._mask:
            self._grow()
        self._buf[(self._head + size) & self._mask] = value
        self._size = size + 1

    def pop(self) -> int:
        head = self._head
        value = self._buf[head]
        self._head = (head + 1) & self._mask
        self._size -= 1
        return value

    def _grow(self) -> None:
        buf = self._buf
        mask = self._mask
        head = self._head
        new = array("q", bytes(16 * (mask + 1)))
        for i in range(self._size):
            new[i] = buf[(head + i) & mask]
        self._buf = new
        self._mask = len(new) - 1
        self._head = 0

    def __iter__(self):
        """Yield values oldest to newest (introspection / debugging)."""
        buf = self._buf
        mask = self._mask
        head = self._head
        for i in range(self._size):
            yield buf[(head + i) & mask]

    def clear(self) -> None:
        self._head = 0
        self._size = 0


class FastPolicyBase(EvictionPolicy):
    """Base class for slab-allocated policies.

    Owns the key-interning table and the metadata slabs common to every
    fast policy (location byte, size, insertion time), the compiled-
    trace id mapping, and slot-based event emission.  Subclasses add
    their queue structures via :meth:`_grow_extra` and implement
    :meth:`_batch`.

    Slab growth is strictly *in place* (``extend``/``frombytes``), so
    local bindings to the slabs taken at the top of a batch loop stay
    valid across growth.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._ids: dict = {}
        self._key_of: List[Hashable] = []
        self._count = 0
        self._slab_cap = 256
        #: 0 = not resident; nonzero = resident (policies with several
        #: regions use distinct codes, e.g. S3-FIFO's 1=S, 2=M).
        self._loc = bytearray(self._slab_cap)
        self._size_of = array("q", bytes(8 * self._slab_cap))
        self._insert_time = array("q", bytes(8 * self._slab_cap))
        self._tmap_src: Optional["CompiledTrace"] = None
        self._tmap: Optional[list] = None

    # ------------------------------------------------------------------
    # Key interning
    # ------------------------------------------------------------------
    def _intern(self, key: Hashable) -> int:
        slot = self._ids.get(key)
        if slot is None:
            slot = len(self._key_of)
            self._ids[key] = slot
            self._key_of.append(key)
            if slot >= self._slab_cap:
                self._grow_slabs()
        return slot

    def _grow_slabs(self) -> None:
        add = self._slab_cap
        self._slab_cap += add
        self._loc.extend(bytes(add))
        self._size_of.frombytes(bytes(8 * add))
        self._insert_time.frombytes(bytes(8 * add))
        self._grow_extra(add)

    def _grow_extra(self, add: int) -> None:
        """Extend subclass slabs by ``add`` slots, in place."""

    # ------------------------------------------------------------------
    # Compiled-trace batch protocol
    # ------------------------------------------------------------------
    def can_run_compiled(self, trace) -> bool:
        """Whether :meth:`run_compiled` accepts ``trace``."""
        return isinstance(trace, _compiled_cls())

    def _tmap_for(self, trace: "CompiledTrace") -> list:
        """Trace-id -> slot mapping, built lazily and cached per trace.

        A list of slot ints (``None`` = id not interned yet), so hot
        reads return existing references rather than allocating.  The
        single-entry cache makes repeated slices of the same trace
        (warmup split, windowed runs) free; alternating between
        different traces rebuilds the map each switch.
        """
        if self._tmap_src is trace:
            return self._tmap  # type: ignore[return-value]
        tmap = [None] * trace.num_objects
        self._tmap_src = trace
        self._tmap = tmap
        return tmap

    def run_compiled(self, trace, start: int = 0, stop: Optional[int] = None):
        """Process requests ``[start, stop)`` of a compiled trace.

        Returns ``(requests, misses, bytes_requested, bytes_missed)``
        for the processed span.  Statistics, clock, and eviction events
        are updated exactly as if each request had gone through
        :meth:`EvictionPolicy.request`.
        """
        if not isinstance(trace, _compiled_cls()):
            raise TypeError(
                f"run_compiled needs a CompiledTrace, got {type(trace).__name__}"
            )
        n = len(trace)
        if stop is None:
            stop = n
        if not 0 <= start <= stop <= n:
            raise IndexError(
                f"invalid span [{start}, {stop}) for trace of {n} requests"
            )
        return self._batch(trace, start, stop, self._tmap_for(trace))

    def _batch(self, trace: "CompiledTrace", start: int, stop: int, tmap: list):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Slot-based event emission / bulk accounting
    # ------------------------------------------------------------------
    def _notify_evict_slot(self, slot: int, freq: int) -> None:
        self.stats.evictions += 1
        if self._evict_listeners:
            event = EvictionEvent(
                key=self._key_of[slot],
                size=self._size_of[slot],
                freq=freq,
                insert_time=self._insert_time[slot],
                evict_time=self.clock,
            )
            for listener in self._evict_listeners:
                listener(event)

    def _notify_demote_slot(self, slot: int, promoted: bool) -> None:
        if self._demote_listeners:
            event = DemotionEvent(
                key=self._key_of[slot],
                size=self._size_of[slot],
                insert_time=self._insert_time[slot],
                demote_time=self.clock,
                promoted=promoted,
            )
            for listener in self._demote_listeners:
                listener(event)

    def _bulk_record(
        self,
        requests: int,
        misses: int,
        bytes_requested: int,
        bytes_missed: int,
    ) -> None:
        st = self.stats
        st.requests += requests
        st.hits += requests - misses
        st.misses += misses
        st.bytes_requested += bytes_requested
        st.bytes_missed += bytes_missed

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        slot = self._ids.get(key)
        return slot is not None and self._loc[slot] != 0

    def __len__(self) -> int:
        return self._count


class SlabListMixin:
    """Intrusive doubly-linked list over slot arrays.

    Mirrors :class:`repro.structures.dlist.DList` exactly: the head is
    the most recently inserted end, the tail the eviction end.
    ``_prv[slot]`` points toward the head (newer neighbour),
    ``_nxt[slot]`` toward the tail; ``-1`` plays the sentinel.  The
    head/tail pair lives in a two-element array (``_ends[0]`` = head,
    ``_ends[1]`` = tail) so that batch loops can bind it locally while
    sharing mutations with the eviction methods.
    """

    def _init_list(self) -> None:
        sc = self._slab_cap
        self._prv = NEG1 * sc
        self._nxt = NEG1 * sc
        self._ends = array("q", [-1, -1])

    def _grow_list(self, add: int) -> None:
        self._prv.extend(NEG1 * add)
        self._nxt.extend(NEG1 * add)

    def _push_head(self, slot: int) -> None:
        ends = self._ends
        head = ends[0]
        self._prv[slot] = -1
        self._nxt[slot] = head
        if head != -1:
            self._prv[head] = slot
        else:
            ends[1] = slot
        ends[0] = slot

    def _unlink(self, slot: int) -> None:
        ends = self._ends
        p = self._prv[slot]
        n = self._nxt[slot]
        if p != -1:
            self._nxt[p] = n
        else:
            ends[0] = n
        if n != -1:
            self._prv[n] = p
        else:
            ends[1] = p

    def _move_to_head(self, slot: int) -> None:
        if self._ends[0] != slot:
            self._unlink(slot)
            self._push_head(slot)
