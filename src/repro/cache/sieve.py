"""SIEVE eviction (Zhang et al., NSDI'24), cited in Section 7.

A single FIFO-ordered queue with one moving *hand*.  On a hit the
object's visited bit is set (lazy promotion, no movement).  At eviction
the hand scans from its current position toward the head of the queue:
visited objects are retained in place with the bit cleared; the first
unvisited object is evicted and the hand stays just past it.  Unlike
CLOCK, retained objects are *not* recycled to the head, which gives
SIEVE quick demotion of new objects.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request
from repro.structures.dlist import DList, DListNode


class _SieveEntry(CacheEntry):
    __slots__ = ("visited",)

    def __init__(self, key: Hashable, size: int, insert_time: int) -> None:
        super().__init__(key, size, insert_time)
        self.visited = False


class SieveCache(EvictionPolicy):
    """SIEVE: lazy promotion + in-place quick demotion on one queue."""

    name = "sieve"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._list = DList()
        self._nodes: Dict[Hashable, DListNode] = {}
        self._hand: Optional[DListNode] = None

    def _access(self, req: Request) -> bool:
        node = self._nodes.get(req.key)
        if node is not None:
            entry: _SieveEntry = node.data
            entry.freq += 1
            entry.last_access = self.clock
            entry.visited = True
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = _SieveEntry(req.key, req.size, self.clock)
        self._nodes[req.key] = self._list.push_head(DListNode(entry))
        self.used += req.size

    def _evict(self) -> None:
        node = self._hand if self._hand is not None else self._list.tail
        assert node is not None, "evicting from an empty SIEVE"
        entry: _SieveEntry = node.data
        while entry.visited:
            entry.visited = False
            prev = node.prev
            node = prev if (prev is not None and prev.linked) else self._list.tail
            assert node is not None
            entry = node.data
        self._hand = node.prev if (node.prev is not None and node.prev.linked) else None
        self._list.unlink(node)
        del self._nodes[entry.key]
        self.used -= entry.size
        self._notify_evict(entry)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def vector_spec(self):
        """Kernel config for :mod:`repro.sim.vector` (exact type only)."""
        if type(self) is not SieveCache:
            return None
        return {"kind": "sieve"}
