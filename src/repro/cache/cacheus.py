"""CACHEUS (Rodriguez et al., FAST'21).

CACHEUS extends LeCaR with (1) an *adaptive* learning rate and (2)
scan-resistant / churn-resistant experts (SR-LRU and CR-LFU).

Reproduction notes: we keep the LeCaR machinery (shared resident set,
ghost histories, regret updates) and add the adaptive learning rate
from the CACHEUS paper.  SR-LRU is approximated by an LRU expert whose
ghost hits only reward when the object was reused at short distance,
and CR-LFU by an LFU expert breaking frequency ties toward the *most*
recently used object (churn resistance).  The full SR-LRU partition
bookkeeping is intentionally omitted; the S3-FIFO paper's finding —
that CACHEUS is dominated by simpler policies on these workloads — is
insensitive to this simplification (see DESIGN.md).
"""

from __future__ import annotations

import heapq
import math
import random
from collections import OrderedDict
from typing import Dict, Hashable, List, Tuple

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class CacheusCache(EvictionPolicy):
    """CACHEUS-style adaptive dual-expert policy."""

    name = "cacheus"

    def __init__(self, capacity: int, seed: int = 0) -> None:
        super().__init__(capacity)
        self._rng = random.Random(seed)
        # Adaptive learning rate state (CACHEUS Section 3.4).
        self._lr = 0.1
        self._lr_direction = 1.0
        self._window = max(16, capacity)
        self._window_hits = 0
        self._window_requests = 0
        self._prev_hit_ratio = 0.0
        self._w_lru = 0.5
        self._w_lfu = 0.5
        self._discount = 0.005 ** (1.0 / max(1, capacity))
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._h_lru: "OrderedDict[Hashable, int]" = OrderedDict()
        self._h_lfu: "OrderedDict[Hashable, int]" = OrderedDict()
        self._freqs: Dict[Hashable, int] = {}
        self._lfu_heap: List[Tuple[int, int, Hashable]] = []
        self._seq = 0

    @property
    def learning_rate(self) -> float:
        return self._lr

    @property
    def weights(self) -> Tuple[float, float]:
        return self._w_lru, self._w_lfu

    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        key = req.key
        self._freqs[key] = self._freqs.get(key, 0) + 1
        self._window_requests += 1
        if self._window_requests >= self._window:
            self._adapt_learning_rate()
        entry = self._entries.get(key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._entries.move_to_end(key)
            self._push_lfu(key)
            self._window_hits += 1
            return True
        if key in self._h_lru:
            evict_time = self._h_lru.pop(key)
            self._reward(regret_lru=True, age=self.clock - evict_time)
        elif key in self._h_lfu:
            evict_time = self._h_lfu.pop(key)
            self._reward(regret_lru=False, age=self.clock - evict_time)
        self._insert(req)
        return False

    def _adapt_learning_rate(self) -> None:
        """Gradient-style learning-rate adaptation with random restarts."""
        hit_ratio = self._window_hits / max(1, self._window_requests)
        delta = hit_ratio - self._prev_hit_ratio
        if delta < 0:
            # Things got worse: reverse direction, or restart if tiny.
            self._lr_direction = -self._lr_direction
        if abs(delta) < 1e-4 and self._rng.random() < 0.1:
            self._lr = self._rng.uniform(1e-3, 1.0)
        else:
            self._lr = min(1.0, max(1e-3, self._lr * (1 + 0.25 * self._lr_direction)))
        self._prev_hit_ratio = hit_ratio
        self._window_hits = 0
        self._window_requests = 0

    def _reward(self, regret_lru: bool, age: int) -> None:
        regret = self._discount**age
        if regret_lru:
            self._w_lru *= math.exp(self._lr * regret)
        else:
            self._w_lfu *= math.exp(self._lr * regret)
        total = self._w_lru + self._w_lfu
        self._w_lru /= total
        self._w_lfu /= total

    # ------------------------------------------------------------------
    def _push_lfu(self, key: Hashable) -> None:
        self._seq += 1
        # CR-LFU: ties broken toward keeping the most recent (negative
        # seq sorts the *older* access first among equal frequencies —
        # but churn resistance wants the newest kept, so older evicted
        # first, which is what the positive seq achieves for LeCaR; CR
        # flips it by preferring to evict the most recently *inserted*
        # of a churning tie).  We use (freq, -seq) so equal-frequency
        # churn evicts the newest arrival, keeping established objects.
        heapq.heappush(self._lfu_heap, (self._freqs.get(key, 0), -self._seq, key))

    def _lfu_victim(self) -> Hashable:
        while self._lfu_heap:
            freq, negseq, key = self._lfu_heap[0]
            if key not in self._entries or self._freqs.get(key, 0) != freq:
                heapq.heappop(self._lfu_heap)
                continue
            return key
        raise RuntimeError("CR-LFU heap exhausted with residents remaining")

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        self._entries[req.key] = entry
        self.used += entry.size
        self._push_lfu(req.key)

    def _evict(self) -> None:
        use_lru = self._rng.random() < self._w_lru / (self._w_lru + self._w_lfu)
        if use_lru:
            key = next(iter(self._entries))
        else:
            key = self._lfu_victim()
        entry = self._entries.pop(key)
        self.used -= entry.size
        history = self._h_lru if use_lru else self._h_lfu
        history[key] = self.clock
        while len(history) > max(1, self.capacity // 2):
            history.popitem(last=False)
        if len(self._freqs) > 8 * max(64, self.capacity):
            keep = set(self._entries) | set(self._h_lru) | set(self._h_lfu)
            self._freqs = {k: v for k, v in self._freqs.items() if k in keep}
        self._notify_evict(entry)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
