"""Name-based registry of every eviction policy in the library.

The registry is what the simulator sweeps, the CLI, and the benchmark
harness use to construct policies uniformly:

>>> from repro.cache import create_policy
>>> cache = create_policy("s3fifo", capacity=1000)
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cache.arc import ArcCache
from repro.cache.base import EvictionPolicy
from repro.cache.belady import BeladyCache
from repro.cache.blru import BloomLruCache
from repro.cache.cacheus import CacheusCache
from repro.cache.car import CarCache
from repro.cache.clock import ClockCache
from repro.cache.clockpro import ClockProCache
from repro.cache.eelru import EelruCache
from repro.cache.fast_fifo import FastFifoCache
from repro.cache.fast_lru import FastLruCache
from repro.cache.fast_sieve import FastSieveCache
from repro.cache.fifo import FifoCache
from repro.cache.fifomerge import FifoMergeCache
from repro.cache.gdsf import GdsfCache
from repro.cache.hyperbolic import HyperbolicCache
from repro.cache.lecar import LeCaRCache
from repro.cache.lfu import LfuCache
from repro.cache.lhd import LhdCache
from repro.cache.lirs import LirsCache
from repro.cache.lrfu import LrfuCache
from repro.cache.lru import LruCache
from repro.cache.lruk import LrukCache
from repro.cache.mq import MqCache
from repro.cache.random_ import RandomCache
from repro.cache.sfifo import SegmentedFifoCache
from repro.cache.sieve import SieveCache
from repro.cache.slru import SlruCache
from repro.cache.tinylfu import TinyLfu10Cache, TinyLfuCache
from repro.cache.twoq import TwoQCache

PolicyFactory = Callable[..., EvictionPolicy]

#: All registered policies, keyed by their canonical name.
POLICIES: Dict[str, PolicyFactory] = {}


def register(cls: PolicyFactory) -> PolicyFactory:
    """Add a policy class to the registry under its ``name``."""
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise ValueError(f"{cls!r} has no registry name")
    if name in POLICIES:
        raise ValueError(f"duplicate policy name {name!r}")
    POLICIES[name] = cls
    return cls


for _cls in (
    FifoCache,
    LruCache,
    ClockCache,
    SieveCache,
    SlruCache,
    ArcCache,
    TwoQCache,
    LirsCache,
    TinyLfuCache,
    TinyLfu10Cache,
    LrukCache,
    LfuCache,
    LeCaRCache,
    CacheusCache,
    LhdCache,
    FifoMergeCache,
    BloomLruCache,
    SegmentedFifoCache,
    RandomCache,
    BeladyCache,
    CarCache,
    ClockProCache,
    EelruCache,
    LrfuCache,
    HyperbolicCache,
    MqCache,
    GdsfCache,
    FastFifoCache,
    FastLruCache,
    FastSieveCache,
):
    register(_cls)


def _register_core() -> None:
    # Imported lazily to avoid a circular import (core depends on cache).
    from repro.core.s3fifo import S3FifoCache
    from repro.core.s3fifo_d import S3FifoDCache
    from repro.core.s3fifo_fast import FastS3FifoCache
    from repro.core.s3fifo_ring import S3FifoRingCache
    from repro.core.s3sieve import S3SieveCache
    from repro.core.variants import S3QueueVariantCache

    for cls in (
        S3FifoCache,
        S3FifoDCache,
        FastS3FifoCache,
        S3FifoRingCache,
        S3SieveCache,
        S3QueueVariantCache,
    ):
        if cls.name not in POLICIES:
            register(cls)


def create_policy(name: str, capacity: int, **kwargs) -> EvictionPolicy:
    """Construct the policy registered under ``name``."""
    _register_core()
    factory = POLICIES.get(name)
    if factory is None:
        known = ", ".join(sorted(POLICIES))
        raise KeyError(f"unknown policy {name!r}; known policies: {known}")
    return factory(capacity, **kwargs)


def removal_capable_policies() -> List[str]:
    """Sorted names of policies whose instances support ``remove()``.

    The service layer requires removal support for TTLs and deletes;
    this is the list its error messages point users at.
    """
    _register_core()
    return sorted(
        name
        for name, factory in POLICIES.items()
        if getattr(factory, "supports_removal", False)
    )


def policy_names(include_offline: bool = False) -> List[str]:
    """Sorted policy names; Belady is excluded unless requested since it
    needs an annotated trace."""
    _register_core()
    names = sorted(POLICIES)
    if not include_offline:
        names = [n for n in names if n != "belady"]
    return names
