"""Segmented FIFO (Turner & Levy 1981), discussed in Section 7.

Two FIFO segments: new objects enter the *primary* segment; objects
evicted from the primary move to the *secondary* segment; a hit on a
secondary object moves it back to the primary head.  There is no ghost
queue and no quick demotion, so — as the paper notes — its efficiency
is below LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class SegmentedFifoCache(EvictionPolicy):
    """Two-segment FIFO with a configurable primary fraction."""

    name = "sfifo"

    def __init__(self, capacity: int, primary_ratio: float = 0.3) -> None:
        super().__init__(capacity)
        if not 0.0 < primary_ratio < 1.0:
            raise ValueError(
                f"primary_ratio must be in (0, 1), got {primary_ratio}"
            )
        self._primary_cap = max(1, int(capacity * primary_ratio))
        self._primary: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._secondary: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._primary_used = 0

    def _access(self, req: Request) -> bool:
        entry = self._primary.get(req.key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            return True
        entry = self._secondary.pop(req.key, None)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._push_primary(entry)
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        self.used += entry.size
        self._push_primary(entry)

    def _push_primary(self, entry: CacheEntry) -> None:
        self._primary[entry.key] = entry
        self._primary_used += entry.size
        while self._primary_used > self._primary_cap and len(self._primary) > 1:
            key, demoted = self._primary.popitem(last=False)
            self._primary_used -= demoted.size
            self._secondary[key] = demoted

    def _evict(self) -> None:
        if self._secondary:
            _, entry = self._secondary.popitem(last=False)
        else:
            _, entry = self._primary.popitem(last=False)
            self._primary_used -= entry.size
        self.used -= entry.size
        self._notify_evict(entry)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._primary or key in self._secondary

    def __len__(self) -> int:
        return len(self._primary) + len(self._secondary)

    def vector_spec(self):
        """Kernel config for :mod:`repro.sim.vector` (exact type only)."""
        if type(self) is not SegmentedFifoCache:
            return None
        return {"kind": "sfifo", "primary_cap": self._primary_cap}
