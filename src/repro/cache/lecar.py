"""LeCaR: Learning Cache Replacement (Vietri et al., HotStorage'18).

Two experts — LRU and in-cache LFU — manage the same resident set.
Each eviction samples an expert proportionally to its weight; the
evicted key goes to that expert's ghost history.  A later miss that
hits a ghost history applies a multiplicative-weights *regret* update
discounted by how long the key sat in the history.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import OrderedDict
from typing import Dict, Hashable, List, Tuple

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request


class LeCaRCache(EvictionPolicy):
    """LeCaR with the original hyper-parameters.

    learning_rate 0.45, discount ``0.005 ** (1/N)`` where N is the
    cache's object capacity (approximated by ``capacity`` for unit
    sizes).
    """

    name = "lecar"

    def __init__(
        self,
        capacity: int,
        learning_rate: float = 0.45,
        seed: int = 0,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < learning_rate < 1.0:
            raise ValueError(
                f"learning_rate must be in (0, 1), got {learning_rate}"
            )
        self._rng = random.Random(seed)
        self._lr = learning_rate
        self._discount = 0.005 ** (1.0 / max(1, capacity))
        self._w_lru = 0.5
        self._w_lfu = 0.5
        # Resident set: an ordered dict gives LRU order; freq gives LFU.
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        # Ghost histories: key -> (eviction time, size).
        self._h_lru: "OrderedDict[Hashable, Tuple[int, int]]" = OrderedDict()
        self._h_lfu: "OrderedDict[Hashable, Tuple[int, int]]" = OrderedDict()
        # Off-cache frequency memory so LFU decisions survive ghosts.
        self._freqs: Dict[Hashable, int] = {}
        # Lazy min-heap of (freq, seq, key) for O(log n) LFU victims;
        # stale entries are skipped when popped.
        self._lfu_heap: List[Tuple[int, int, Hashable]] = []
        self._seq = 0

    @property
    def weights(self) -> Tuple[float, float]:
        """Current (LRU, LFU) expert weights."""
        return self._w_lru, self._w_lfu

    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        key = req.key
        self._freqs[key] = self._freqs.get(key, 0) + 1
        entry = self._entries.get(key)
        if entry is not None:
            entry.freq += 1
            entry.last_access = self.clock
            self._entries.move_to_end(key)
            self._push_lfu(key)
            return True
        # Regret updates on ghost hits.
        if key in self._h_lru:
            evict_time, _ = self._h_lru.pop(key)
            self._reward(regret_lru=True, age=self.clock - evict_time)
        elif key in self._h_lfu:
            evict_time, _ = self._h_lfu.pop(key)
            self._reward(regret_lru=False, age=self.clock - evict_time)
        self._insert(req)
        return False

    def _reward(self, regret_lru: bool, age: int) -> None:
        regret = self._discount**age
        if regret_lru:
            self._w_lru *= math.exp(self._lr * regret)
        else:
            self._w_lfu *= math.exp(self._lr * regret)
        total = self._w_lru + self._w_lfu
        self._w_lru /= total
        self._w_lfu /= total

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        entry.freq = 0
        self._entries[req.key] = entry
        self.used += entry.size
        self._push_lfu(req.key)

    def _push_lfu(self, key: Hashable) -> None:
        self._seq += 1
        heapq.heappush(self._lfu_heap, (self._freqs.get(key, 0), self._seq, key))

    def _lfu_victim(self) -> Hashable:
        """Least frequent resident, LRU-tie-broken, via the lazy heap."""
        while self._lfu_heap:
            freq, _, key = self._lfu_heap[0]
            if key not in self._entries or self._freqs.get(key, 0) != freq:
                heapq.heappop(self._lfu_heap)  # stale
                continue
            return key
        raise RuntimeError("LFU heap exhausted with residents remaining")

    def _evict(self) -> None:
        use_lru = self._rng.random() < self._w_lru / (self._w_lru + self._w_lfu)
        if use_lru:
            key = next(iter(self._entries))
        else:
            key = self._lfu_victim()
        entry = self._entries.pop(key)
        self.used -= entry.size
        history = self._h_lru if use_lru else self._h_lfu
        history[key] = (self.clock, entry.size)
        while len(history) > max(1, self.capacity):
            history.popitem(last=False)
        self._trim_freq_memory()
        self._notify_evict(entry)

    def _trim_freq_memory(self) -> None:
        # Bound the frequency memory: drop entries for keys that are
        # neither resident nor in a ghost history once it grows large.
        limit = 8 * max(64, self.capacity)
        if len(self._freqs) <= limit:
            return
        keep = set(self._entries) | set(self._h_lru) | set(self._h_lfu)
        self._freqs = {k: v for k, v in self._freqs.items() if k in keep}

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
