"""Array-backed SIEVE: the slot mirror of :class:`repro.cache.sieve.SieveCache`."""

from __future__ import annotations

from array import array

from repro.cache.fast_base import FastPolicyBase, SlabListMixin
from repro.sim.request import Request


class FastSieveCache(SlabListMixin, FastPolicyBase):
    """SIEVE over a slab-allocated queue with a visited bitmap.

    Bit-identical to ``sieve``: hits only set the visited bit (lazy
    promotion), eviction scans the hand from its position toward the
    queue head, clearing visited bits, wrapping to the tail, and
    removes the first unvisited slot in place.
    """

    name = "sieve-fast"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._freq = array("q", bytes(8 * self._slab_cap))
        self._visited = bytearray(self._slab_cap)
        self._hand = -1
        self._init_list()

    def _grow_extra(self, add: int) -> None:
        self._freq.frombytes(bytes(8 * add))
        self._visited.extend(bytes(add))
        self._grow_list(add)

    # ------------------------------------------------------------------
    # Streaming path
    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        slot = self._ids.get(req.key)
        if slot is not None and self._loc[slot]:
            self._freq[slot] += 1
            self._visited[slot] = 1
            return True
        if slot is None:
            slot = self._intern(req.key)
        self._insert_slot(slot, req.size)
        return False

    # ------------------------------------------------------------------
    # Shared insertion / eviction machinery
    # ------------------------------------------------------------------
    def _insert_slot(self, slot: int, size: int) -> None:
        while self.used + size > self.capacity:
            self._evict_one()
        self._size_of[slot] = size
        self._insert_time[slot] = self.clock
        self._freq[slot] = 0
        self._visited[slot] = 0
        self._loc[slot] = 1
        self._push_head(slot)
        self.used += size
        self._count += 1

    def _evict_one(self) -> None:
        visited = self._visited
        prv = self._prv
        ends = self._ends
        slot = self._hand
        if slot == -1:
            slot = ends[1]
        while visited[slot]:
            visited[slot] = 0
            p = prv[slot]  # toward the head, wrapping to the tail
            slot = p if p != -1 else ends[1]
        self._hand = prv[slot]  # -1 when the victim was the head
        self._unlink(slot)
        self._loc[slot] = 0
        self.used -= self._size_of[slot]
        self._count -= 1
        self._notify_evict_slot(slot, self._freq[slot])

    def vector_spec(self):
        """Kernel config for :mod:`repro.sim.vector` (exact type only)."""
        if type(self) is not FastSieveCache:
            return None
        return {"kind": "sieve"}

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def _batch(self, trace, start, stop, tmap):
        keys = trace.key_ids()
        sizes = trace.sizes
        table = trace.key_table
        loc = self._loc
        freq = self._freq
        visited = self._visited
        cap = self.capacity
        clock0 = self.clock - start
        misses = 0
        bytes_requested = 0
        bytes_missed = 0
        unit = sizes is None
        for i in range(start, stop):
            kid = keys[i]
            size = 1 if unit else sizes[i]
            bytes_requested += size
            if size > cap:
                # Oversized is a miss even when the key is resident, with
                # no metadata update (matches base.request's early return).
                misses += 1
                bytes_missed += size
                continue
            slot = tmap[kid]
            if slot is None:
                slot = self._intern(table[kid])
                tmap[kid] = slot
            if loc[slot]:
                freq[slot] += 1
                visited[slot] = 1
                continue
            misses += 1
            bytes_missed += size
            self.clock = clock0 + i + 1
            self._insert_slot(slot, size)
        requests = stop - start
        self.clock = clock0 + stop
        self._bulk_record(requests, misses, bytes_requested, bytes_missed)
        return (requests, misses, bytes_requested, bytes_missed)
