"""LRU eviction using the intrusive doubly-linked list substrate."""

from __future__ import annotations

from typing import Dict, Hashable

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request
from repro.structures.dlist import DList, DListNode


class LruCache(EvictionPolicy):
    """Least-Recently-Used eviction.

    Implemented with the two-pointer doubly-linked list the paper
    criticizes (Section 2.2): every hit promotes the object to the MRU
    position, the operation that serializes concurrent readers in real
    systems.
    """

    name = "lru"
    supports_removal = True

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._list = DList()
        self._nodes: Dict[Hashable, DListNode] = {}

    def _access(self, req: Request) -> bool:
        node = self._nodes.get(req.key)
        if node is not None:
            entry: CacheEntry = node.data
            entry.freq += 1
            entry.last_access = self.clock
            self._list.move_to_head(node)
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + req.size > self.capacity:
            self._evict()
        entry = CacheEntry(req.key, req.size, self.clock)
        self._nodes[req.key] = self._list.push_head(DListNode(entry))
        self.used += req.size

    def _evict(self) -> None:
        node = self._list.pop_tail()
        assert node is not None, "evicting from an empty LRU"
        entry: CacheEntry = node.data
        del self._nodes[entry.key]
        self.used -= entry.size
        self._notify_evict(entry)

    def remove(self, key: Hashable) -> bool:
        node = self._nodes.pop(key, None)
        if node is None:
            return False
        self._list.unlink(node)
        self.used -= node.data.size
        return True

    def __contains__(self, key: Hashable) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)
