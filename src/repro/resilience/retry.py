"""Generic retry with exponential backoff, jitter, and attempt timeouts.

Used by :class:`~repro.flash.flashcache.HybridFlashCache` to retry
injected flash-write failures (backoff measured in *logical* clock
units so simulations stay deterministic) and by
:func:`~repro.sim.runner.run_sweep` to bound and retry stuck sweep
jobs (backoff measured in seconds).

Jitter is derived from ``random.Random(seed)`` per :class:`RetryPolicy`
instance, so a given policy always produces the same delay sequence —
the property the fault-injection determinism test pins down.
"""

from __future__ import annotations

import random
import time
from typing import Callable, List, Optional, Tuple, Type, TypeVar

T = TypeVar("T")


class RetryError(Exception):
    """All attempts failed (or the time budget ran out).

    ``last_error`` is the final exception.  When the policy carries a
    ``max_elapsed`` budget, ``elapsed`` and ``budget`` report how much
    backoff time had accumulated against it — the message shows both,
    so a deadline abort is distinguishable from attempt exhaustion.
    """

    def __init__(
        self,
        attempts: int,
        last_error: Exception,
        elapsed: Optional[float] = None,
        budget: Optional[float] = None,
    ) -> None:
        msg = (
            f"gave up after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )
        if budget is not None:
            msg += (
                f"; elapsed {elapsed:.3f} of {budget:.3f} budget"
            )
        super().__init__(msg)
        self.attempts = attempts
        self.last_error = last_error
        self.elapsed = elapsed
        self.budget = budget


class RetryPolicy:
    """Exponential backoff with full jitter and per-attempt timeouts.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (1 = no retries).
    base_delay:
        Backoff before the first retry; attempt ``k`` (0-based retry
        index) waits ``min(max_delay, base_delay * multiplier**k)``,
        scaled by a jitter factor drawn from ``[1 - jitter, 1]``.
    attempt_timeout:
        Budget for one attempt, in the caller's time units.  ``call``
        cannot preempt a running function, so in-process users treat
        this as advisory; :func:`~repro.sim.runner.run_sweep` enforces
        it on worker processes (seconds).
    max_elapsed:
        Total-deadline budget across *all* retries, in the same time
        units as the delays.  ``call`` sums the backoff delays it is
        about to pay; a retry whose delay would push the total past
        the budget is abandoned and :class:`RetryError` raised with
        ``elapsed``/``budget`` filled in.  Stacked retries during
        failover therefore cannot exceed a caller's time budget, no
        matter how many layers retry independently.
    seed:
        Seeds the jitter stream; same seed, same delays.
    """

    __slots__ = (
        "max_attempts",
        "base_delay",
        "multiplier",
        "max_delay",
        "jitter",
        "attempt_timeout",
        "max_elapsed",
        "seed",
        "_rng",
    )

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 1.0,
        multiplier: float = 2.0,
        max_delay: float = 60.0,
        jitter: float = 0.5,
        attempt_timeout: Optional[float] = None,
        max_elapsed: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {base_delay}")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        if attempt_timeout is not None and attempt_timeout <= 0:
            raise ValueError(
                f"attempt_timeout must be positive, got {attempt_timeout}"
            )
        if max_elapsed is not None and max_elapsed <= 0:
            raise ValueError(
                f"max_elapsed must be positive, got {max_elapsed}"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.attempt_timeout = attempt_timeout
        self.max_elapsed = max_elapsed
        self.seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Rewind the jitter stream (for byte-identical reruns)."""
        self._rng = random.Random(self.seed)

    def backoff(self, retry_index: int) -> float:
        """Delay before retry ``retry_index`` (0-based), with jitter."""
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0, got {retry_index}")
        raw = min(
            self.max_delay, self.base_delay * (self.multiplier ** retry_index)
        )
        factor = 1.0 - self.jitter * self._rng.random()
        return raw * factor

    def delays(self) -> List[float]:
        """The full backoff sequence (``max_attempts - 1`` delays)."""
        return [self.backoff(i) for i in range(self.max_attempts - 1)]

    # ------------------------------------------------------------------
    def call(
        self,
        fn: Callable[..., T],
        *args,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        sleep: Optional[Callable[[float], None]] = time.sleep,
        on_retry: Optional[Callable[[int, Exception, float], None]] = None,
        **kwargs,
    ) -> T:
        """Invoke ``fn`` with retries; raises :class:`RetryError` when
        every attempt fails.

        ``sleep=None`` skips real waiting (simulation use); ``on_retry``
        observes ``(attempt_number, error, delay)`` before each retry.

        With ``max_elapsed`` set, the accumulated backoff is charged
        against the budget *before* each wait: a retry whose delay
        would overshoot is abandoned immediately (the deadline abort
        happens at the decision point, not after sleeping past it),
        and the raised :class:`RetryError` reports elapsed vs budget.
        Elapsed time is the sum of backoff delays — the policy's own
        logical clock — so budget behaviour is deterministic per seed
        regardless of how long ``fn`` itself runs.
        """
        last: Optional[Exception] = None
        elapsed = 0.0
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except retry_on as exc:  # noqa: PERF203 - retry loop
                last = exc
                if attempt == self.max_attempts:
                    break
                delay = self.backoff(attempt - 1)
                if (self.max_elapsed is not None
                        and elapsed + delay > self.max_elapsed):
                    raise RetryError(
                        attempt, exc,
                        elapsed=elapsed, budget=self.max_elapsed,
                    ) from exc
                elapsed += delay
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                if sleep is not None and delay > 0:
                    sleep(delay)
        assert last is not None
        if self.max_elapsed is not None:
            raise RetryError(
                self.max_attempts, last,
                elapsed=elapsed, budget=self.max_elapsed,
            )
        raise RetryError(self.max_attempts, last)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, seed={self.seed})"
        )
