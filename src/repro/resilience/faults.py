"""Deterministic, seed-driven fault injection.

The paper's evaluation ran on a distributed *fault-tolerant* platform;
this module is the single-machine stand-in for the faults that platform
absorbed.  A :class:`FaultPlan` is a schedule of :class:`FaultEvent`
windows on a logical clock (request sequence number).  Components that
support degradation (:class:`~repro.flash.flashcache.HybridFlashCache`,
:class:`~repro.hierarchy.multilevel.MultiLevelCache`) consult the plan
on every operation, so a given plan produces *byte-identical* degraded
behaviour across runs — fault injection never uses wall-clock time or
unseeded randomness.

Fault kinds:

* ``flash-read`` — flash lookups fail (served as misses).
* ``flash-write`` — flash writes fail; persistent failure drives the
  flash layer into DRAM-only bypass until the window closes.
* ``latency`` — an operation is charged extra logical latency, which
  interacts with :class:`~repro.resilience.retry.RetryPolicy` attempt
  timeouts.
* ``trace-corruption`` — trace records inside the window are corrupted
  on disk (see :func:`corrupt_binary_trace`), exercising the readers'
  ``strict=False`` path.
* ``level-outage`` — one hierarchy level goes dark and is bypassed.
* ``crash`` — the cache process dies; used by the warm-restart
  experiment in :mod:`repro.resilience.snapshot`.
* ``worker-crash`` — one shard worker process of the multiprocess
  cache backend (:class:`~repro.service.mp.MPCacheService`) hard-exits
  mid-operation, exercising the parent's crash detection and clean
  shutdown of the surviving workers.
* ``conn-reset`` — the network front-end
  (:class:`~repro.netsrv.server.CacheServer`) abruptly closes a client
  connection while serving the command at the covering clock,
  exercising client reconnect paths and the server's own accounting.
  The clock is the server-wide accepted-command sequence number.
* ``slow-client`` — the front-end stalls before writing a reply
  (``magnitude`` seconds per command, default 1.0), simulating a
  client that drains its socket too slowly; exercises drain deadlines
  and idle-timeout interplay.  Same command clock as ``conn-reset``.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

FLASH_READ = "flash-read"
FLASH_WRITE = "flash-write"
LATENCY = "latency"
TRACE_CORRUPTION = "trace-corruption"
LEVEL_OUTAGE = "level-outage"
CRASH = "crash"
WORKER_CRASH = "worker-crash"
CONN_RESET = "conn-reset"
SLOW_CLIENT = "slow-client"

FAULT_KINDS = frozenset(
    {FLASH_READ, FLASH_WRITE, LATENCY, TRACE_CORRUPTION, LEVEL_OUTAGE,
     CRASH, WORKER_CRASH, CONN_RESET, SLOW_CLIENT}
)

# Kinds whose overlapping windows compose (latency magnitudes sum — a
# behaviour :meth:`FaultPlan.latency` defines and tests pin).  Every
# other kind is a binary condition, where two windows covering the
# same clock on the same target is a plan-authoring bug.
_ADDITIVE_KINDS = frozenset({LATENCY})


class FaultEvent:
    """One fault window: ``kind`` is active for clocks in [start, stop).

    ``target`` scopes the fault (a hierarchy level index for
    ``level-outage``; ``None`` means any target).  ``magnitude`` is
    kind-specific (extra logical latency units for ``latency``).
    """

    __slots__ = ("kind", "start", "stop", "target", "magnitude")

    def __init__(
        self,
        kind: str,
        start: int,
        stop: int,
        target: Optional[int] = None,
        magnitude: float = 1.0,
    ) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; known: {sorted(FAULT_KINDS)}"
            )
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        if stop <= start:
            raise ValueError(f"stop must be > start, got [{start}, {stop})")
        self.kind = kind
        self.start = start
        self.stop = stop
        self.target = target
        self.magnitude = magnitude

    def active(self, clock: int, target: Optional[int] = None) -> bool:
        if not self.start <= clock < self.stop:
            return False
        if self.target is None or target is None:
            return True
        return self.target == target

    def __repr__(self) -> str:
        scope = "" if self.target is None else f", target={self.target}"
        return f"FaultEvent({self.kind}, [{self.start}, {self.stop}){scope})"


class FaultPlan:
    """An immutable-after-build schedule of fault windows.

    Build explicitly with :meth:`add`, or generate a reproducible random
    schedule with :meth:`generate`.  Membership queries are O(events of
    that kind) — plans hold a handful of windows, not one per request.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: List[FaultEvent] = []
        for event in events:
            self._append_validated(event)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _append_validated(self, event: FaultEvent) -> None:
        """Admit one window after plan-level validation.

        :class:`FaultEvent` already rejects unknown kinds; the check
        here re-runs for events built by hand (``__slots__`` instances
        can be mutated after construction).  Overlap rejection applies
        to non-additive kinds only — two windows of a binary fault
        covering the same clock on the same target cannot both "be"
        the fault, so the plan is ambiguous and almost certainly a
        typo; latency windows stack by design.
        """
        if event.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {event.kind!r}; "
                f"known: {sorted(FAULT_KINDS)}"
            )
        if event.kind not in _ADDITIVE_KINDS:
            for other in self._events:
                if (other.kind == event.kind
                        and other.target == event.target
                        and event.start < other.stop
                        and other.start < event.stop):
                    raise ValueError(
                        f"overlapping {event.kind!r} windows on target "
                        f"{event.target!r}: [{other.start}, {other.stop}) "
                        f"and [{event.start}, {event.stop})"
                    )
        self._events.append(event)
        self._events.sort(key=lambda e: (e.start, e.stop, e.kind))

    def add(
        self,
        kind: str,
        start: int,
        stop: int,
        target: Optional[int] = None,
        magnitude: float = 1.0,
    ) -> "FaultPlan":
        """Append a window; returns ``self`` for chaining."""
        self._append_validated(
            FaultEvent(kind, start, stop, target, magnitude)
        )
        return self

    @classmethod
    def generate(
        cls,
        horizon: int,
        kinds: Sequence[str] = (FLASH_READ, FLASH_WRITE),
        count: int = 3,
        mean_duration: int = 100,
        seed: int = 0,
        targets: Sequence[Optional[int]] = (None,),
    ) -> "FaultPlan":
        """A reproducible random schedule over ``[0, horizon)``.

        The same arguments always yield the same plan: all randomness
        comes from ``random.Random(seed)``.  Draws that would overlap
        an already-placed window of the same (non-additive) kind and
        target are deterministically redrawn; after a bounded number
        of attempts (25 per requested event) the plan is returned with
        fewer than ``count`` windows rather than looping forever on a
        crowded horizon.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        rng = random.Random(seed)
        plan = cls()
        placed = 0
        attempts = 0
        budget = count * 25
        while placed < count and attempts < budget:
            attempts += 1
            kind = rng.choice(list(kinds))
            duration = max(1, int(rng.expovariate(1.0 / mean_duration)))
            start = rng.randrange(max(1, horizon - duration))
            target = rng.choice(list(targets))
            try:
                plan._append_validated(FaultEvent(
                    kind, start, min(horizon, start + duration), target
                ))
            except ValueError:
                continue  # conflicting window: redraw deterministically
            placed += 1
        return plan

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        return tuple(self._events)

    def active(
        self, kind: str, clock: int, target: Optional[int] = None
    ) -> bool:
        """Whether any ``kind`` window covers ``clock`` (and ``target``)."""
        return any(
            e.kind == kind and e.active(clock, target) for e in self._events
        )

    def window(
        self, kind: str, clock: int, target: Optional[int] = None
    ) -> Optional[FaultEvent]:
        """The covering window, or ``None``."""
        for e in self._events:
            if e.kind == kind and e.active(clock, target):
                return e
        return None

    def latency(self, clock: int) -> int:
        """Total injected latency units at ``clock`` (0 outside spikes)."""
        return int(
            sum(
                e.magnitude
                for e in self._events
                if e.kind == LATENCY and e.active(clock)
            )
        )

    def events_of(self, kind: str) -> List[FaultEvent]:
        return [e for e in self._events if e.kind == kind]

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self._events)} events)"


def corrupt_binary_trace(
    src: Union[str, Path],
    dst: Union[str, Path],
    plan: FaultPlan,
    record_size: int = 16,
) -> int:
    """Copy a binary trace, corrupting records inside ``trace-corruption``
    windows (window clocks are 1-based record numbers).

    Corruption zeroes the record — for the ``(u32 time, u64 obj_id,
    u32 size)`` format a zero size is invalid, so corrupted records are
    detectable by the reader.  Returns the number of records corrupted.
    The same plan always corrupts the same records.
    """
    data = bytearray(Path(src).read_bytes())
    corrupted = 0
    for i in range(len(data) // record_size):
        if plan.active(TRACE_CORRUPTION, i + 1):
            start = i * record_size
            data[start : start + record_size] = b"\x00" * record_size
            corrupted += 1
    Path(dst).write_bytes(bytes(data))
    return corrupted
