"""The always-on policy sanitizer.

:class:`CheckedPolicy` wraps any
:class:`~repro.cache.base.EvictionPolicy` and cross-checks its
observable behaviour against the interface contract on every request:

* **occupancy** — ``used`` never exceeds ``capacity`` or goes negative;
* **stats** — hit/miss/byte counters stay arithmetically consistent;
* **membership** — a reported hit implies the key was resident before
  the request, and a miss implies it was not;
* **unit-size accounting** — for unit-size workloads, ``used`` equals
  the resident object count;

plus structural deep checks for policies whose internals it knows
(S3-FIFO's S/M/ghost queues, FIFO, LRU):

* queue byte sums match the policy's running ``*_used`` counters;
* no key is resident in both S and M;
* the ghost queue holds no resident key and respects its capacity;
* per-object frequencies stay within ``freq_cap``.

Cheap checks run on every access; deep checks run every ``deep_every``
accesses and on :meth:`CheckedPolicy.check`.  Violations raise
:class:`InvariantViolation` naming the violated invariant — the point
is a diagnostic at the corruption site, not a miss-ratio anomaly three
million requests later.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from repro.cache.base import EvictionPolicy
from repro.cache.fifo import FifoCache
from repro.cache.lru import LruCache
from repro.sim.request import Request


class InvariantViolation(AssertionError):
    """A policy broke an interface or structural invariant.

    ``invariant`` is the short machine-readable name; the message adds
    the policy and the observed values.
    """

    def __init__(self, invariant: str, policy: object, detail: str) -> None:
        super().__init__(
            f"invariant {invariant!r} violated by {type(policy).__name__}: "
            f"{detail}"
        )
        self.invariant = invariant
        self.detail = detail


class CheckedPolicy:
    """A transparent sanitizing proxy around an eviction policy.

    Delegates the full :class:`~repro.cache.base.EvictionPolicy`
    surface (``stats``, ``capacity``, listeners, policy-specific
    introspection) to the wrapped instance, so it can stand in for the
    raw policy anywhere — including :func:`repro.sim.simulator.simulate`
    and the sweep runner.
    """

    def __init__(self, policy: EvictionPolicy, deep_every: int = 256) -> None:
        if deep_every < 1:
            raise ValueError(f"deep_every must be >= 1, got {deep_every}")
        self._policy = policy
        self._deep_every = deep_every
        self._accesses = 0
        self._unit_sizes_only = True
        self.checks_run = 0

    # ------------------------------------------------------------------
    # Policy surface
    # ------------------------------------------------------------------
    @property
    def policy(self) -> EvictionPolicy:
        return self._policy

    def request(self, req: Request) -> bool:
        resident_before = req.key in self._policy
        hit = self._policy.request(req)
        self._accesses += 1
        if req.size != 1:
            self._unit_sizes_only = False
        self._check_cheap(req, hit, resident_before)
        if self._accesses % self._deep_every == 0:
            self._check_deep()
        return hit

    def access(self, key: Hashable, size: int = 1) -> bool:
        return self.request(Request(key, size=size))

    def __contains__(self, key: Hashable) -> bool:
        return key in self._policy

    def __len__(self) -> int:
        return len(self._policy)

    def __getattr__(self, name: str):
        return getattr(self._policy, name)

    def __repr__(self) -> str:
        return f"CheckedPolicy({self._policy!r}, checks={self.checks_run})"

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Run every applicable invariant immediately."""
        self._check_cheap(None, None, None)
        self._check_deep()

    def _fail(self, invariant: str, detail: str) -> None:
        raise InvariantViolation(invariant, self._policy, detail)

    def _check_cheap(
        self,
        req: Optional[Request],
        hit: Optional[bool],
        resident_before: Optional[bool],
    ) -> None:
        p = self._policy
        self.checks_run += 1
        if p.used < 0:
            self._fail("occupancy", f"used={p.used} is negative")
        if p.used > p.capacity:
            self._fail(
                "occupancy", f"used={p.used} exceeds capacity={p.capacity}"
            )
        s = p.stats
        if s.hits + s.misses != s.requests:
            self._fail(
                "stats",
                f"hits={s.hits} + misses={s.misses} != requests={s.requests}",
            )
        if s.bytes_missed > s.bytes_requested:
            self._fail(
                "stats",
                f"bytes_missed={s.bytes_missed} exceeds "
                f"bytes_requested={s.bytes_requested}",
            )
        if min(s.hits, s.misses, s.evictions, s.bytes_requested) < 0:
            self._fail("stats", "negative counter")
        if hit is not None and req is not None:
            if hit and not resident_before:
                self._fail(
                    "membership",
                    f"hit reported for key {req.key!r} that was not resident",
                )
            if not hit and resident_before and req.size <= p.capacity:
                self._fail(
                    "membership",
                    f"miss reported for resident key {req.key!r}",
                )

    def _check_deep(self) -> None:
        p = self._policy
        self.checks_run += 1
        count = len(p)
        if count < 0:
            self._fail("object-count", f"len() returned {count}")
        from repro.core.s3fifo import S3FifoCache

        # Structural checks first: a structural break (say, a key
        # duplicated into both queues) also skews the generic counters,
        # and the specific diagnostic is the useful one.
        if isinstance(p, S3FifoCache):
            self._check_s3fifo(p)
        elif isinstance(p, (FifoCache,)):
            self._check_entry_map(p, p._entries)
        elif isinstance(p, LruCache):
            self._check_lru(p)
        if self._unit_sizes_only and p.used != count:
            self._fail(
                "unit-size-accounting",
                f"used={p.used} but {count} unit-size objects resident",
            )

    def _check_entry_map(self, p: EvictionPolicy, entries) -> None:
        total = sum(e.size for e in entries.values())
        if total != p.used:
            self._fail(
                "byte-accounting",
                f"entry sizes sum to {total} but used={p.used}",
            )

    def _check_lru(self, p: LruCache) -> None:
        total = sum(node.data.size for node in p._nodes.values())
        if total != p.used:
            self._fail(
                "byte-accounting",
                f"entry sizes sum to {total} but used={p.used}",
            )
        if len(p._nodes) != len(p._list):
            self._fail(
                "structure",
                f"{len(p._nodes)} index entries but {len(p._list)} list nodes",
            )

    def _check_s3fifo(self, p) -> None:
        duplicates = p._small.keys() & p._main.keys()
        if duplicates:
            self._fail(
                "duplicate-key",
                f"keys resident in both S and M: {sorted(duplicates)[:5]}",
            )
        ghost = p._ghost
        if len(ghost) > ghost.capacity:
            self._fail(
                "ghost-capacity",
                f"ghost holds {len(ghost)} keys, capacity {ghost.capacity}",
            )
        ghost_resident = [
            key for key in p._small.keys() | p._main.keys() if key in ghost
        ]
        if ghost_resident:
            self._fail(
                "ghost-consistency",
                f"resident keys also in ghost queue: {ghost_resident[:5]}",
            )
        s_sum = sum(e.size for e in p._small.values())
        m_sum = sum(e.size for e in p._main.values())
        if s_sum != p._s_used:
            self._fail(
                "small-queue-accounting",
                f"S entries sum to {s_sum} but small_used={p._s_used}",
            )
        if m_sum != p._m_used:
            self._fail(
                "main-queue-accounting",
                f"M entries sum to {m_sum} but main_used={p._m_used}",
            )
        if s_sum + m_sum != p.used:
            self._fail(
                "byte-accounting",
                f"S+M bytes {s_sum + m_sum} != used={p.used}",
            )
        for queue in (p._small, p._main):
            for entry in queue.values():
                if not 0 <= entry.freq <= p._freq_cap:
                    self._fail(
                        "frequency-range",
                        f"key {entry.key!r} has freq={entry.freq}, "
                        f"cap={p._freq_cap}",
                    )
                    return


def run_checked(
    policy: EvictionPolicy,
    trace,
    deep_every: int = 256,
) -> Tuple[CheckedPolicy, List[bool]]:
    """Replay ``trace`` through a sanitized ``policy``; returns the
    wrapper and the per-request hit list.  Raises
    :class:`InvariantViolation` at the first broken invariant."""
    checked = CheckedPolicy(policy, deep_every=deep_every)
    hits = []
    for item in trace:
        if isinstance(item, Request):
            hits.append(checked.request(item))
        elif isinstance(item, tuple):
            hits.append(checked.access(item[0], item[1]))
        else:
            hits.append(checked.access(item))
    checked.check()
    return checked, hits
