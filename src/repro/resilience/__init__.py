"""Resilience subsystem: fault injection, retry, sanitizing, snapshots.

The paper's evaluation leaned on a distributed fault-tolerant platform;
a production-bound reproduction needs the same discipline in miniature:

* :mod:`repro.resilience.faults` — deterministic, seed-driven fault
  schedules (:class:`FaultPlan`) for flash read/write failures, latency
  spikes, trace corruption, hierarchy-level outages, and crashes.
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, exponential
  backoff with seeded jitter and attempt timeouts.
* :mod:`repro.resilience.sanitizer` — :class:`CheckedPolicy`, the
  always-on invariant checker wrappable around any eviction policy.
* :mod:`repro.resilience.snapshot` — warm-restart snapshots and the
  cold-vs-warm crash-recovery experiment.
"""

from repro.resilience.faults import (
    CONN_RESET,
    CRASH,
    FAULT_KINDS,
    FLASH_READ,
    FLASH_WRITE,
    LATENCY,
    LEVEL_OUTAGE,
    SLOW_CLIENT,
    TRACE_CORRUPTION,
    WORKER_CRASH,
    FaultEvent,
    FaultPlan,
    corrupt_binary_trace,
)
from repro.resilience.retry import RetryError, RetryPolicy
from repro.resilience.sanitizer import (
    CheckedPolicy,
    InvariantViolation,
    run_checked,
)
from repro.resilience.snapshot import (
    CrashRecoveryResult,
    SnapshotError,
    crash_recovery_experiment,
    load_snapshot,
    restore_policy,
    save_snapshot,
    snapshot_policy,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "corrupt_binary_trace",
    "FAULT_KINDS",
    "FLASH_READ",
    "FLASH_WRITE",
    "LATENCY",
    "TRACE_CORRUPTION",
    "LEVEL_OUTAGE",
    "CRASH",
    "WORKER_CRASH",
    "CONN_RESET",
    "SLOW_CLIENT",
    "RetryError",
    "RetryPolicy",
    "CheckedPolicy",
    "InvariantViolation",
    "run_checked",
    "CrashRecoveryResult",
    "SnapshotError",
    "crash_recovery_experiment",
    "snapshot_policy",
    "restore_policy",
    "save_snapshot",
    "load_snapshot",
]
