"""Snapshot / warm-restart of cache state, and the crash experiment.

Production FIFO caches (Cachelib, TrafficServer, Extstore) survive
process restarts because the flash log *is* the cache; the DRAM index
is rebuilt by scanning it.  This module gives the simulator the same
capability for its in-memory policies: :func:`snapshot_policy` captures
an S3-FIFO or LRU cache's full eviction state (queue contents and
order, frequencies, ghost keys, stats), :func:`restore_policy` rebuilds
an identical cache, and :func:`crash_recovery_experiment` quantifies
what the capability is worth — the cold-vs-warm miss-ratio gap after an
injected crash.

Snapshots are plain dicts of JSON-serializable values; :func:`save_snapshot`
/ :func:`load_snapshot` persist them.  A stats checksum
(:meth:`repro.cache.base.CacheStats.checksum`) is embedded and verified
on restore, so a corrupted snapshot fails loudly instead of warming the
cache with garbage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.cache.base import CacheEntry, CacheStats, EvictionPolicy
from repro.cache.lru import LruCache
from repro.resilience.faults import CRASH, FaultPlan
from repro.sim.request import Request
from repro.structures.dlist import DListNode
from repro.structures.ghost import GhostFifo

SNAPSHOT_VERSION = 2  # v2: ghost state carries the stale-slot counts


class SnapshotError(ValueError):
    """Unsupported policy, wrong version, or checksum mismatch."""


def _ghost_state(ghost: GhostFifo) -> dict:
    """The raw deque and live-occurrence counts.

    Both are captured verbatim: eviction order depends on stale slots
    left behind by ``remove`` (a removed-then-re-added key falls out
    when its *old* slot reaches the front), so compacting to the live
    keys would change future behaviour.
    """
    return {
        "queue": list(ghost._queue),
        "present": [[key, count] for key, count in ghost._present.items()],
        "stale": [[key, count] for key, count in ghost._stale.items()],
    }


def snapshot_policy(policy: EvictionPolicy) -> dict:
    """Capture the complete eviction state of an S3-FIFO or LRU cache."""
    from repro.core.s3fifo import S3FifoCache

    stats = policy.stats.as_dict()
    base = {
        "version": SNAPSHOT_VERSION,
        "capacity": policy.capacity,
        "clock": policy.clock,
        "stats": stats,
        "stats_checksum": policy.stats.checksum(),
    }
    if type(policy) is S3FifoCache:
        base.update(
            policy="s3fifo",
            s_cap=policy._s_cap,
            m_cap=policy._m_cap,
            freq_cap=policy._freq_cap,
            threshold=policy._threshold,
            ghost_dynamic=policy._ghost_dynamic,
            ghost_capacity=policy._ghost.capacity,
            small=[
                [e.key, e.size, e.freq] for e in policy._small.values()
            ],
            main=[[e.key, e.size, e.freq] for e in policy._main.values()],
            ghost=_ghost_state(policy._ghost),
        )
        return base
    if type(policy) is LruCache:
        # LRU order, least-recent first, so pushing to the head in
        # sequence rebuilds the exact recency list.
        base.update(
            policy="lru",
            entries=[
                [n.data.key, n.data.size, n.data.freq]
                for n in policy._list.iter_from_tail()
            ],
        )
        return base
    raise SnapshotError(
        f"snapshot not supported for {type(policy).__name__}; "
        "supported: S3FifoCache, LruCache"
    )


def restore_policy(snapshot: dict) -> EvictionPolicy:
    """Rebuild the policy captured by :func:`snapshot_policy`."""
    from repro.core.s3fifo import S3FifoCache

    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {snapshot.get('version')!r}"
        )
    stats = CacheStats.from_dict(snapshot["stats"])
    if stats.checksum() != snapshot["stats_checksum"]:
        raise SnapshotError(
            "stats checksum mismatch: snapshot is corrupt "
            f"({stats.checksum()} != {snapshot['stats_checksum']})"
        )
    name = snapshot.get("policy")
    if name == "s3fifo":
        policy = S3FifoCache(snapshot["capacity"])
        policy._s_cap = snapshot["s_cap"]
        policy._m_cap = snapshot["m_cap"]
        policy._freq_cap = snapshot["freq_cap"]
        policy._threshold = snapshot["threshold"]
        policy._ghost_dynamic = snapshot["ghost_dynamic"]
        policy._ghost = GhostFifo(snapshot["ghost_capacity"])
        policy._ghost._queue.extend(
            _key(key) for key in snapshot["ghost"]["queue"]
        )
        policy._ghost._present.update(
            (_key(key), count) for key, count in snapshot["ghost"]["present"]
        )
        policy._ghost._stale.update(
            (_key(key), count) for key, count in snapshot["ghost"]["stale"]
        )
        for field, used_attr in (("small", "_s_used"), ("main", "_m_used")):
            queue = getattr(policy, f"_{field}")
            for key, size, freq in snapshot[field]:
                entry = CacheEntry(_key(key), size, insert_time=0)
                entry.freq = freq
                queue[entry.key] = entry
                setattr(
                    policy, used_attr, getattr(policy, used_attr) + size
                )
                policy.used += size
    elif name == "lru":
        policy = LruCache(snapshot["capacity"])
        for key, size, freq in snapshot["entries"]:
            entry = CacheEntry(_key(key), size, insert_time=0)
            entry.freq = freq
            policy._nodes[entry.key] = policy._list.push_head(
                DListNode(entry)
            )
            policy.used += size
    else:
        raise SnapshotError(f"unknown snapshot policy {name!r}")
    policy.clock = snapshot["clock"]
    policy.stats = stats
    return policy


def _key(key):
    """JSON turns tuple keys into lists; restore hashability."""
    return tuple(key) if isinstance(key, list) else key


def save_snapshot(path: Union[str, Path], snapshot: dict) -> None:
    Path(path).write_text(json.dumps(snapshot))


def load_snapshot(path: Union[str, Path]) -> dict:
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# Crash-recovery experiment
# ----------------------------------------------------------------------
class CrashRecoveryResult:
    """Cold vs. warm restart after an injected crash."""

    __slots__ = (
        "policy",
        "capacity",
        "crash_at",
        "pre_crash_miss_ratio",
        "cold_miss_ratio",
        "warm_miss_ratio",
        "post_requests",
    )

    def __init__(
        self,
        policy: str,
        capacity: int,
        crash_at: int,
        pre_crash_miss_ratio: float,
        cold_miss_ratio: float,
        warm_miss_ratio: float,
        post_requests: int,
    ) -> None:
        self.policy = policy
        self.capacity = capacity
        self.crash_at = crash_at
        self.pre_crash_miss_ratio = pre_crash_miss_ratio
        self.cold_miss_ratio = cold_miss_ratio
        self.warm_miss_ratio = warm_miss_ratio
        self.post_requests = post_requests

    @property
    def recovery_benefit(self) -> float:
        """Miss-ratio reduction from restarting warm instead of cold."""
        return self.cold_miss_ratio - self.warm_miss_ratio

    def __repr__(self) -> str:
        return (
            f"CrashRecoveryResult({self.policy}, crash_at={self.crash_at}, "
            f"cold={self.cold_miss_ratio:.4f}, "
            f"warm={self.warm_miss_ratio:.4f})"
        )


def crash_recovery_experiment(
    trace,
    capacity: int,
    policy: str = "s3fifo",
    plan: Optional[FaultPlan] = None,
    crash_at: Optional[int] = None,
) -> CrashRecoveryResult:
    """Run ``trace``, crash at the first ``crash`` fault window (or at
    ``crash_at``), then finish the trace twice: once cold (fresh cache)
    and once warm (restored from a snapshot taken at the crash point).

    Everything is deterministic: the crash point comes from the plan,
    and the two restarts replay the identical post-crash suffix.
    """
    from repro.cache.registry import create_policy

    if policy not in {"s3fifo", "lru"}:
        raise SnapshotError(
            f"crash experiment supports 's3fifo' and 'lru', got {policy!r}"
        )
    trace = list(trace)
    if crash_at is None:
        if plan is None:
            raise ValueError("need either a FaultPlan with a crash or crash_at")
        crash_events = plan.events_of(CRASH)
        if not crash_events:
            raise ValueError("fault plan contains no crash event")
        crash_at = crash_events[0].start
    if not 0 < crash_at < len(trace):
        raise ValueError(
            f"crash_at must fall inside the trace, got {crash_at} "
            f"for {len(trace)} requests"
        )

    live = create_policy(policy, capacity=capacity)
    for item in trace[:crash_at]:
        live.request(_as_request(item))
    pre_miss = live.stats.miss_ratio
    snap = snapshot_policy(live)

    suffix = trace[crash_at:]
    cold = create_policy(policy, capacity=capacity)
    cold_misses = sum(
        0 if cold.request(_as_request(item)) else 1 for item in suffix
    )
    warm = restore_policy(snap)
    warm_misses = sum(
        0 if warm.request(_as_request(item)) else 1 for item in suffix
    )
    n = len(suffix)
    return CrashRecoveryResult(
        policy=policy,
        capacity=capacity,
        crash_at=crash_at,
        pre_crash_miss_ratio=pre_miss,
        cold_miss_ratio=cold_misses / n if n else 0.0,
        warm_miss_ratio=warm_misses / n if n else 0.0,
        post_requests=n,
    )


def _as_request(item) -> Request:
    if isinstance(item, Request):
        return item
    if isinstance(item, tuple):
        return Request(item[0], size=item[1])
    return Request(item)
