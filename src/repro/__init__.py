"""Reproduction of "FIFO queues are all you need for cache eviction"
(S3-FIFO, SOSP'23).

Quick start::

    from repro import S3FifoCache, simulate, zipf_trace

    trace = zipf_trace(num_objects=10_000, num_requests=200_000, alpha=1.0)
    cache = S3FifoCache(capacity=1_000)
    result = simulate(cache, trace)
    print(result.miss_ratio)

Package layout:

* :mod:`repro.core` — S3-FIFO, S3-FIFO-D, queue-type variants, and
  quick-demotion instrumentation (the paper's contribution).
* :mod:`repro.cache` — 20 baseline eviction policies behind one
  interface, plus the registry.
* :mod:`repro.sim` — the trace-driven simulator and sweep runner.
* :mod:`repro.traces` — synthetic generators, the 14 Table-1 dataset
  stand-ins, analysis utilities, and trace file I/O.
* :mod:`repro.flash` — DRAM+flash layered cache with admission
  policies (Section 5.4).
* :mod:`repro.concurrency` — the throughput/scalability model
  (Section 5.3).
* :mod:`repro.resilience` — fault injection, retry/backoff, the policy
  sanitizer, and warm-restart snapshots.
* :mod:`repro.service` — the live cache service layer: thread-safe
  TTL-aware get/set/delete over any policy, hash-sharding, and a
  concurrent load generator.
* :mod:`repro.cluster` — consistent-hash ring over node processes with
  R-way replication, crash failover, read-repair, and rebalancing.
"""

from repro.cache import EvictionPolicy, create_policy, policy_names
from repro.cluster import ClusterCacheService, HashRing
from repro.core import (
    FastS3FifoCache,
    S3FifoCache,
    S3FifoDCache,
    S3FifoRingCache,
    S3SieveCache,
)
from repro.resilience import (
    CheckedPolicy,
    FaultPlan,
    InvariantViolation,
    RetryPolicy,
)
from repro.service import (
    CacheService,
    RemovalUnsupportedError,
    ShardedCacheService,
    stable_key_hash,
)
from repro.sim import Request, simulate, simulate_compiled
from repro.traces import CompiledTrace, compile_trace, zipf_trace

__version__ = "1.0.0"

__all__ = [
    "EvictionPolicy",
    "create_policy",
    "policy_names",
    "S3FifoCache",
    "S3FifoDCache",
    "FastS3FifoCache",
    "S3FifoRingCache",
    "S3SieveCache",
    "CheckedPolicy",
    "FaultPlan",
    "InvariantViolation",
    "RetryPolicy",
    "CacheService",
    "ShardedCacheService",
    "ClusterCacheService",
    "HashRing",
    "RemovalUnsupportedError",
    "stable_key_hash",
    "Request",
    "simulate",
    "simulate_compiled",
    "CompiledTrace",
    "compile_trace",
    "zipf_trace",
    "__version__",
]
