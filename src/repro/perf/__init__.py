"""Performance benchmark harness (reference vs. fast policies).

The paper's Section 7 argument is that FIFO-based eviction is cheaper
per request than LRU-based designs; this package keeps the repo honest
about its own constant factors.  :func:`run_perf_bench` measures
requests/second and peak memory for each reference policy against its
``*-fast`` twin and emits a machine-readable report
(``BENCH_perf.json``) so perf changes are visible across commits.

Run it via ``s3fifo-repro perf`` or ``make perf``; see
``docs/PERFORMANCE.md`` for how to read the output.
"""

from repro.perf.bench import DEFAULT_PAIRS, run_perf_bench, write_report

__all__ = ["DEFAULT_PAIRS", "run_perf_bench", "write_report"]
