"""Measure reference vs. fast vs. vector policy throughput.

One benchmark run builds a seeded Zipf trace, then times every
(reference, fast) policy pair on it:

* the **reference** policy streams the raw request list through
  :func:`repro.sim.simulator.simulate` — the cost every experiment in
  this repo paid before the fast path existed;
* the **fast** policy consumes the compiled trace
  (:func:`repro.traces.compiled.compile_trace`), which routes through
  the batched ``run_compiled`` loop;
* for FIFO-family pairs a third **vector** row runs the same compiled
  trace through the NumPy batch engine (:mod:`repro.sim.vector`).

Trace compilation is timed separately and reported once in the config
block: it is paid once per trace, not per policy/size combination, so
folding it into a single policy's wall time would misattribute it.
Compiled traces are cached on disk between runs
(:mod:`repro.traces.store`), so on warm runs ``compile_time_s``
reflects the ``.npz`` load rather than a full re-intern.

:func:`run_vector_bench` adds the vector-engine acceptance workload: a
high-skew Zipf trace whose hit ratio exceeds 0.9, where lazy promotion
lets the vector engine consume hit runs wholesale.  Both engines are
timed best-of-``repeats`` to damp scheduler noise on small machines.

``peak_rss`` is the process high-water RSS (KiB, from ``getrusage``)
sampled after each measurement.  It is monotone over the process
lifetime — read later entries as "still fits in this much", not as
per-policy footprints.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: (reference, fast) registry-name pairs benchmarked by default.
DEFAULT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("fifo", "fifo-fast"),
    ("lru", "lru-fast"),
    ("sieve", "sieve-fast"),
    ("s3fifo", "s3fifo-fast"),
)

#: Fast policies the vector-engine acceptance workload times, with the
#: minimum speedup the guard test enforces against each scalar twin.
VECTOR_BENCH_TARGETS: Tuple[Tuple[str, float], ...] = (
    ("fifo-fast", 2.5),
    ("s3fifo-fast", 2.0),
)

#: Bumped when the report layout changes incompatibly.
#: v2: added ``env`` block, per-pair ``vector`` rows, and the
#: ``vector`` acceptance-workload section.
SCHEMA_VERSION = 2


def env_block() -> Dict:
    """Provenance for perf numbers: interpreter, numpy, host shape.

    Throughput figures are meaningless without knowing what produced
    them; this block is embedded in every benchmark report (and the
    loadgen reports) so archived JSON stays interpretable.
    """
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    else:
        numpy_version = numpy.__version__
    return {
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "python_build": " ".join(platform.python_build()),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _peak_rss_kb() -> int:
    # ru_maxrss is KiB on Linux but bytes on macOS/BSD.
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin" or sys.platform.startswith(
        ("freebsd", "netbsd", "openbsd")
    ):
        return rss // 1024
    return rss


def _measure(policy_name: str, impl: str, reference: str, trace,
             capacity: int, trace_label: str, seed: int,
             engine: str = "auto") -> Dict:
    from repro.cache.registry import create_policy
    from repro.sim.simulator import simulate

    policy = create_policy(policy_name, capacity=capacity)
    start = time.perf_counter()
    result = simulate(policy, trace, engine=engine)
    wall = time.perf_counter() - start
    return {
        "policy": policy_name,
        "impl": impl,
        "reference": reference,
        "trace": trace_label,
        "seed": seed,
        "requests": result.requests,
        "capacity": capacity,
        "wall_time_s": round(wall, 6),
        "requests_per_sec": round(result.requests / wall) if wall else 0,
        "peak_rss": _peak_rss_kb(),
        "miss_ratio": round(result.miss_ratio, 6),
    }


def _zipf_compiled(num_objects: int, num_requests: int, alpha: float,
                   seed: int, label: str):
    """Compiled Zipf trace via the content-addressed disk cache."""
    from repro.traces.store import cached_compile
    from repro.traces.synthetic import zipf_trace

    spec = (
        f"zipf-a{alpha:g}-o{num_objects}-n{num_requests}-s{seed}"
    )
    return cached_compile(
        spec,
        lambda: zipf_trace(
            num_objects=num_objects,
            num_requests=num_requests,
            alpha=alpha,
            seed=seed,
        ),
        name=label,
    )


def run_perf_bench(
    pairs: Sequence[Tuple[str, str]] = DEFAULT_PAIRS,
    num_objects: int = 100_000,
    num_requests: int = 1_000_000,
    alpha: float = 1.0,
    cache_ratio: float = 0.1,
    seed: int = 42,
) -> Dict:
    """Run the reference-vs-fast benchmark; returns the report dict.

    The default workload is the acceptance configuration: a 1M-request
    Zipf(1.0) trace over 100k objects at 10% cache size.  Every fast
    (and vector) measurement's miss count is asserted equal to its
    reference's — an engine that got fast by being wrong fails the
    benchmark.
    """
    from repro.sim.vector import VECTOR_POLICIES

    capacity = max(1, int(num_objects * cache_ratio))
    trace_label = f"zipf-{alpha:g}"
    start = time.perf_counter()
    compiled = _zipf_compiled(
        num_objects, num_requests, alpha, seed, trace_label
    )
    compiled.key_ids()
    compile_time = time.perf_counter() - start
    items = list(compiled)  # raw keys for the reference stream path

    results: List[Dict] = []
    speedups: Dict[str, float] = {}
    for ref_name, fast_name in pairs:
        ref_entry = _measure(
            ref_name, "reference", ref_name, items,
            capacity, trace_label, seed,
        )
        # Pin the scalar engine: with "auto", a vector-eligible policy
        # on a compiled trace would silently route to the vector
        # engine and this row would stop measuring run_compiled.
        fast_entry = _measure(
            fast_name, "fast", ref_name, compiled,
            capacity, trace_label, seed, engine="scalar",
        )
        if fast_entry["miss_ratio"] != ref_entry["miss_ratio"]:
            raise AssertionError(
                f"{fast_name} diverged from {ref_name}: miss ratio "
                f"{fast_entry['miss_ratio']} != {ref_entry['miss_ratio']}"
            )
        if fast_entry["wall_time_s"]:
            speedups[fast_name] = round(
                ref_entry["wall_time_s"] / fast_entry["wall_time_s"], 2
            )
        results.extend((ref_entry, fast_entry))
        if fast_name in VECTOR_POLICIES:
            vec_entry = _measure(
                fast_name, "vector", ref_name, compiled,
                capacity, trace_label, seed, engine="vector",
            )
            if vec_entry["miss_ratio"] != ref_entry["miss_ratio"]:
                raise AssertionError(
                    f"{fast_name} vector engine diverged from "
                    f"{ref_name}: miss ratio {vec_entry['miss_ratio']}"
                    f" != {ref_entry['miss_ratio']}"
                )
            if vec_entry["wall_time_s"]:
                speedups[f"{fast_name}-vector"] = round(
                    ref_entry["wall_time_s"] / vec_entry["wall_time_s"],
                    2,
                )
            results.append(vec_entry)
    return {
        "schema": SCHEMA_VERSION,
        "trace": trace_label,
        "seed": seed,
        "env": env_block(),
        "config": {
            "num_objects": num_objects,
            "num_requests": num_requests,
            "alpha": alpha,
            "cache_ratio": cache_ratio,
            "capacity": capacity,
            "compile_time_s": round(compile_time, 6),
        },
        "results": results,
        "speedups": speedups,
    }


def run_vector_bench(
    targets: Sequence[Tuple[str, float]] = VECTOR_BENCH_TARGETS,
    num_objects: int = 100_000,
    num_requests: int = 1_000_000,
    alpha: float = 1.4,
    cache_ratio: float = 0.1,
    seed: int = 42,
    repeats: int = 3,
) -> Dict:
    """Time the vector engine against the scalar fast twins.

    The acceptance workload is deliberately high-skew (Zipf 1.4): the
    resulting hit ratio above 0.9 is where lazy promotion pays — long
    hit runs collapse into single NumPy probes.  Each engine is timed
    ``repeats`` times and the *best* wall is kept: on small shared
    machines scheduler noise easily exceeds the margin the guard
    asserts, and min-of-N is the standard estimator for the
    noise-free cost.
    """
    capacity = max(1, int(num_objects * cache_ratio))
    trace_label = f"zipf-{alpha:g}"
    compiled = _zipf_compiled(
        num_objects, num_requests, alpha, seed, trace_label
    )
    compiled.key_ids()
    compiled.occurrence_index()

    rows: List[Dict] = []
    speedups: Dict[str, float] = {}
    hit_ratios: Dict[str, float] = {}
    for fast_name, target in targets:
        best: Dict[str, Optional[Dict]] = {"scalar": None, "vector": None}
        walls: Dict[str, List[float]] = {"scalar": [], "vector": []}
        for _ in range(max(1, repeats)):
            for engine in ("scalar", "vector"):
                entry = _measure(
                    fast_name, engine, fast_name, compiled,
                    capacity, trace_label, seed, engine=engine,
                )
                walls[engine].append(entry["wall_time_s"])
                prev = best[engine]
                if prev is None or entry["wall_time_s"] < prev["wall_time_s"]:
                    best[engine] = entry
        scalar, vector = best["scalar"], best["vector"]
        assert scalar is not None and vector is not None
        if vector["miss_ratio"] != scalar["miss_ratio"]:
            raise AssertionError(
                f"{fast_name} vector engine diverged from scalar: miss "
                f"ratio {vector['miss_ratio']} != {scalar['miss_ratio']}"
            )
        scalar["all_walls_s"] = walls["scalar"]
        vector["all_walls_s"] = walls["vector"]
        rows.extend((scalar, vector))
        hit_ratios[fast_name] = round(1.0 - scalar["miss_ratio"], 6)
        if vector["wall_time_s"]:
            speedups[fast_name] = round(
                scalar["wall_time_s"] / vector["wall_time_s"], 2
            )
    return {
        "trace": trace_label,
        "seed": seed,
        "config": {
            "num_objects": num_objects,
            "num_requests": num_requests,
            "alpha": alpha,
            "cache_ratio": cache_ratio,
            "capacity": capacity,
            "repeats": repeats,
        },
        "targets": {name: target for name, target in targets},
        "hit_ratios": hit_ratios,
        "results": rows,
        "speedups": speedups,
    }


def write_report(report: Dict, out_path) -> Path:
    """Write a benchmark report as JSON, creating parent directories."""
    path = Path(out_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def format_report(report: Dict) -> str:
    """Human-readable table for the CLI."""
    lines = [
        f"trace {report['trace']} seed {report['seed']}: "
        f"{report['config']['num_requests']:,} requests, "
        f"{report['config']['num_objects']:,} objects, "
        f"capacity {report['config']['capacity']:,} "
        f"(compile {report['config']['compile_time_s']:.2f}s)",
        f"{'policy':<14} {'impl':<10} {'req/s':>12} "
        f"{'wall s':>8} {'miss':>7} {'rss MiB':>8}",
    ]
    for row in report["results"]:
        lines.append(
            f"{row['policy']:<14} {row['impl']:<10} "
            f"{row['requests_per_sec']:>12,} {row['wall_time_s']:>8.3f} "
            f"{row['miss_ratio']:>7.4f} {row['peak_rss'] / 1024:>8.0f}"
        )
    for name, ratio in report["speedups"].items():
        lines.append(f"speedup {name}: {ratio:.2f}x")
    vector = report.get("vector")
    if vector:
        cfg = vector["config"]
        lines.append(
            f"vector workload {vector['trace']}: "
            f"{cfg['num_requests']:,} requests, best of "
            f"{cfg['repeats']} repeats"
        )
        for row in vector["results"]:
            lines.append(
                f"{row['policy']:<14} {row['impl']:<10} "
                f"{row['requests_per_sec']:>12,} "
                f"{row['wall_time_s']:>8.3f} "
                f"{row['miss_ratio']:>7.4f} {row['peak_rss'] / 1024:>8.0f}"
            )
        for name, ratio in vector["speedups"].items():
            hit = vector["hit_ratios"].get(name, 0.0)
            lines.append(
                f"vector speedup {name}: {ratio:.2f}x "
                f"(hit ratio {hit:.4f}, target "
                f"{vector['targets'].get(name, 0):.1f}x)"
            )
    return "\n".join(lines)
