"""Measure reference vs. fast policy throughput on synthetic traces.

One benchmark run builds a seeded Zipf trace, then times every
(reference, fast) policy pair on it:

* the **reference** policy streams the raw request list through
  :func:`repro.sim.simulator.simulate` — the cost every experiment in
  this repo paid before the fast path existed;
* the **fast** policy consumes the compiled trace
  (:func:`repro.traces.compiled.compile_trace`), which routes through
  the batched ``run_compiled`` loop.

Trace compilation is timed separately and reported once in the config
block: it is paid once per trace, not per policy/size combination, so
folding it into a single policy's wall time would misattribute it.

``peak_rss`` is the process high-water RSS (KiB, from ``getrusage``)
sampled after each measurement.  It is monotone over the process
lifetime — read later entries as "still fits in this much", not as
per-policy footprints.
"""

from __future__ import annotations

import json
import resource
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: (reference, fast) registry-name pairs benchmarked by default.
DEFAULT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("fifo", "fifo-fast"),
    ("lru", "lru-fast"),
    ("sieve", "sieve-fast"),
    ("s3fifo", "s3fifo-fast"),
)

#: Bumped when the report layout changes incompatibly.
SCHEMA_VERSION = 1


def _peak_rss_kb() -> int:
    # ru_maxrss is KiB on Linux but bytes on macOS/BSD.
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin" or sys.platform.startswith(
        ("freebsd", "netbsd", "openbsd")
    ):
        return rss // 1024
    return rss


def _measure(policy_name: str, impl: str, reference: str, trace,
             capacity: int, trace_label: str, seed: int) -> Dict:
    from repro.cache.registry import create_policy
    from repro.sim.simulator import simulate

    policy = create_policy(policy_name, capacity=capacity)
    start = time.perf_counter()
    result = simulate(policy, trace)
    wall = time.perf_counter() - start
    return {
        "policy": policy_name,
        "impl": impl,
        "reference": reference,
        "trace": trace_label,
        "seed": seed,
        "requests": result.requests,
        "capacity": capacity,
        "wall_time_s": round(wall, 6),
        "requests_per_sec": round(result.requests / wall) if wall else 0,
        "peak_rss": _peak_rss_kb(),
        "miss_ratio": round(result.miss_ratio, 6),
    }


def run_perf_bench(
    pairs: Sequence[Tuple[str, str]] = DEFAULT_PAIRS,
    num_objects: int = 100_000,
    num_requests: int = 1_000_000,
    alpha: float = 1.0,
    cache_ratio: float = 0.1,
    seed: int = 42,
) -> Dict:
    """Run the reference-vs-fast benchmark; returns the report dict.

    The default workload is the acceptance configuration: a 1M-request
    Zipf(1.0) trace over 100k objects at 10% cache size.  Every fast
    measurement's miss count is asserted equal to its reference's —
    a fast policy that got fast by being wrong fails the benchmark.
    """
    from repro.traces.compiled import compile_trace
    from repro.traces.synthetic import zipf_trace

    items = list(
        zipf_trace(
            num_objects=num_objects,
            num_requests=num_requests,
            alpha=alpha,
            seed=seed,
        )
    )
    capacity = max(1, int(num_objects * cache_ratio))
    trace_label = f"zipf-{alpha:g}"
    start = time.perf_counter()
    compiled = compile_trace(items, name=trace_label)
    compiled.key_ids()
    compile_time = time.perf_counter() - start

    results: List[Dict] = []
    speedups: Dict[str, float] = {}
    for ref_name, fast_name in pairs:
        ref_entry = _measure(
            ref_name, "reference", ref_name, items,
            capacity, trace_label, seed,
        )
        fast_entry = _measure(
            fast_name, "fast", ref_name, compiled,
            capacity, trace_label, seed,
        )
        if fast_entry["miss_ratio"] != ref_entry["miss_ratio"]:
            raise AssertionError(
                f"{fast_name} diverged from {ref_name}: miss ratio "
                f"{fast_entry['miss_ratio']} != {ref_entry['miss_ratio']}"
            )
        if fast_entry["wall_time_s"]:
            speedups[fast_name] = round(
                ref_entry["wall_time_s"] / fast_entry["wall_time_s"], 2
            )
        results.extend((ref_entry, fast_entry))
    return {
        "schema": SCHEMA_VERSION,
        "trace": trace_label,
        "seed": seed,
        "config": {
            "num_objects": num_objects,
            "num_requests": num_requests,
            "alpha": alpha,
            "cache_ratio": cache_ratio,
            "capacity": capacity,
            "compile_time_s": round(compile_time, 6),
        },
        "results": results,
        "speedups": speedups,
    }


def write_report(report: Dict, out_path) -> Path:
    """Write a benchmark report as JSON, creating parent directories."""
    path = Path(out_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def format_report(report: Dict) -> str:
    """Human-readable table for the CLI."""
    lines = [
        f"trace {report['trace']} seed {report['seed']}: "
        f"{report['config']['num_requests']:,} requests, "
        f"{report['config']['num_objects']:,} objects, "
        f"capacity {report['config']['capacity']:,} "
        f"(compile {report['config']['compile_time_s']:.2f}s)",
        f"{'policy':<14} {'impl':<10} {'req/s':>12} "
        f"{'wall s':>8} {'miss':>7} {'rss MiB':>8}",
    ]
    for row in report["results"]:
        lines.append(
            f"{row['policy']:<14} {row['impl']:<10} "
            f"{row['requests_per_sec']:>12,} {row['wall_time_s']:>8.3f} "
            f"{row['miss_ratio']:>7.4f} {row['peak_rss'] / 1024:>8.0f}"
        )
    for name, ratio in report["speedups"].items():
        lines.append(f"speedup {name}: {ratio:.2f}x")
    return "\n".join(lines)
