"""Per-policy critical-section cost profiles.

Each profile splits the work a cache does per request into *parallel*
nanoseconds (hashing, comparisons, data copy — runs concurrently on
all cores) and *critical* nanoseconds (list surgery, sketch updates,
pointer swings that must run under a lock or contended atomics).  The
numbers are calibrated to the single-thread throughputs and scaling
behaviour reported in Section 5.3 / Fig. 8 for the Cachelib prototype:

* **strict LRU** locks on every hit (promotion: ~6 dependent memory
  accesses under lock).
* **optimized LRU** (Cachelib) uses delayed promotion + try-lock, so
  only a fraction of hits take the lock, but misses still serialize.
* **TinyLFU / 2Q** add sketch updates and window→main migration, i.e.
  more critical work than LRU on both hits and misses.
* **S3-FIFO** has no locking: hits are a relaxed atomic increment
  (first two requests only), misses a couple of lock-free queue CAS
  operations; only a small residual serialization remains.
* **Segcache** needs atomics only on segment-chain changes
  (100-1000x rarer than misses) but pays extra parallel work for
  merge copies, making it slower single-threaded than S3-FIFO.
"""

from __future__ import annotations

from typing import Dict


class CostProfile:
    """Nanoseconds of parallel and critical work per hit and per miss.

    ``handoff_ns`` models lock transfer overhead (cache-line bouncing)
    paid per acquisition *when contended*, which is what makes strict
    LRU's curve bend downward rather than just flatten.
    """

    __slots__ = (
        "name",
        "hit_parallel",
        "hit_critical",
        "miss_parallel",
        "miss_critical",
        "handoff_ns",
    )

    def __init__(
        self,
        name: str,
        hit_parallel: float,
        hit_critical: float,
        miss_parallel: float,
        miss_critical: float,
        handoff_ns: float = 0.0,
    ) -> None:
        for label, value in (
            ("hit_parallel", hit_parallel),
            ("hit_critical", hit_critical),
            ("miss_parallel", miss_parallel),
            ("miss_critical", miss_critical),
            ("handoff_ns", handoff_ns),
        ):
            if value < 0:
                raise ValueError(f"{label} must be >= 0, got {value}")
        self.name = name
        self.hit_parallel = hit_parallel
        self.hit_critical = hit_critical
        self.miss_parallel = miss_parallel
        self.miss_critical = miss_critical
        self.handoff_ns = handoff_ns

    def parallel_ns(self, miss_ratio: float) -> float:
        """Expected parallel nanoseconds per request."""
        return (
            self.hit_parallel * (1 - miss_ratio)
            + self.miss_parallel * miss_ratio
        )

    def critical_ns(self, miss_ratio: float) -> float:
        """Expected critical (serialized) nanoseconds per request."""
        return (
            self.hit_critical * (1 - miss_ratio)
            + self.miss_critical * miss_ratio
        )

    def __repr__(self) -> str:
        return f"CostProfile({self.name})"


PROFILES: Dict[str, CostProfile] = {
    p.name: p
    for p in (
        CostProfile(
            "lru-strict",
            hit_parallel=120.0,
            hit_critical=260.0,
            miss_parallel=200.0,
            miss_critical=420.0,
            handoff_ns=18.0,
        ),
        CostProfile(
            "lru-optimized",
            hit_parallel=140.0,
            hit_critical=55.0,
            miss_parallel=220.0,
            miss_critical=380.0,
            handoff_ns=8.0,
        ),
        CostProfile(
            "tinylfu",
            hit_parallel=220.0,
            hit_critical=95.0,
            miss_parallel=320.0,
            miss_critical=520.0,
            handoff_ns=8.0,
        ),
        CostProfile(
            "twoq",
            hit_parallel=180.0,
            hit_critical=85.0,
            miss_parallel=280.0,
            miss_critical=480.0,
            handoff_ns=8.0,
        ),
        CostProfile(
            "s3fifo",
            hit_parallel=130.0,
            hit_critical=2.0,
            miss_parallel=260.0,
            miss_critical=45.0,
            handoff_ns=1.0,
        ),
        CostProfile(
            "segcache",
            hit_parallel=190.0,
            hit_critical=1.0,
            miss_parallel=420.0,
            miss_critical=8.0,
            handoff_ns=1.0,
        ),
    )
}


def profile_for(name: str) -> CostProfile:
    """Look up a profile; raises KeyError with the known names."""
    profile = PROFILES.get(name)
    if profile is None:
        raise KeyError(
            f"unknown cost profile {name!r}; known: {', '.join(sorted(PROFILES))}"
        )
    return profile
