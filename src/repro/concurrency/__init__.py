"""Throughput and scalability modeling (Section 5.3).

CPython's GIL makes a native multicore throughput experiment
meaningless, so — per the substitution policy in DESIGN.md — this
package models each policy's critical-section profile (what work runs
under a lock vs. in parallel) and derives throughput-vs-threads curves
two ways: a closed-form saturation model and a discrete-event
simulation of threads contending for the lock.  A real-thread harness
is included to document the GIL limitation empirically, and
:mod:`repro.concurrency.calibrate` fits the model's cost profile to
per-op costs measured by the live service's load generator.
"""

from repro.concurrency.calibrate import (
    calibrate_profile,
    calibration_summary,
    parallel_fraction,
    profile_from_loadgen,
)
from repro.concurrency.costs import CostProfile, PROFILES, profile_for
from repro.concurrency.model import (
    ScalingPoint,
    analytic_throughput,
    simulate_throughput,
    throughput_curve,
)
from repro.concurrency.sharding import (
    imbalance_factor,
    shard_load_shares,
    sharded_throughput,
    sharding_scaling_curve,
)
from repro.concurrency.threads import gil_bound_throughput

__all__ = [
    "imbalance_factor",
    "shard_load_shares",
    "sharded_throughput",
    "sharding_scaling_curve",
    "CostProfile",
    "PROFILES",
    "profile_for",
    "ScalingPoint",
    "analytic_throughput",
    "simulate_throughput",
    "throughput_curve",
    "gil_bound_throughput",
    "calibrate_profile",
    "calibration_summary",
    "parallel_fraction",
    "profile_from_loadgen",
]
