"""Real-thread throughput harness — the GIL demonstration.

This drives an actual policy object from N Python threads behind a
mutex, exactly as a naive port of the Cachelib benchmark would.  Under
CPython the GIL serializes everything, so throughput does *not* scale
with threads regardless of the policy; the module exists to document
empirically why Fig. 8 is reproduced with the cost model in
:mod:`repro.concurrency.model` instead (see DESIGN.md substitution 2).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

from repro.cache.registry import create_policy
from repro.sim.request import Request


def gil_bound_throughput(
    policy_name: str,
    capacity: int,
    trace: List[int],
    threads: int = 4,
    duration: float = 0.5,
) -> Dict[str, float]:
    """Hammer one shared cache from ``threads`` threads for ``duration``
    seconds; returns aggregate ops/sec and per-thread efficiency.

    Expect ``scaling_efficiency`` (ops/sec at n threads divided by n x
    single-thread ops/sec) well below 1 on CPython — the point being
    made.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if not trace:
        raise ValueError("trace must be non-empty")

    def run_once(nthreads: int) -> float:
        cache = create_policy(policy_name, capacity=capacity)
        lock = threading.Lock()
        stop = threading.Event()
        counts = [0] * nthreads

        def worker(tid: int) -> None:
            i = tid
            n = len(trace)
            local = 0
            while not stop.is_set():
                key = trace[i % n]
                with lock:
                    cache.request(Request(key))
                local += 1
                i += nthreads
            counts[tid] = local

        workers = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(nthreads)
        ]
        start = time.perf_counter()
        for w in workers:
            w.start()
        time.sleep(duration)
        stop.set()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - start
        return sum(counts) / elapsed

    single = run_once(1)
    multi = run_once(threads)
    return {
        "single_thread_ops": single,
        "multi_thread_ops": multi,
        "threads": float(threads),
        "scaling_efficiency": multi / (single * threads) if single > 0 else 0.0,
    }
