"""Sharded-cache scalability model (Section 7 discussion).

The common alternative to a scalable eviction algorithm is *sharding*:
partition the key space across cores, one independent cache each.  The
paper notes why this disappoints in practice: "cache workloads often
follow Zipfian popularity, so sharding leads to load imbalance and
limits the whole system's throughput".

This module quantifies that argument.  Keys are hashed to shards; with
Zipf(alpha) popularity the hottest shard receives a disproportionate
share of requests, and system throughput saturates at
``per_core_throughput / hottest_shard_load_share`` — far below the
``n x`` ideal that a lock-free shared cache (S3-FIFO) approaches.
Sharding also splits the cache capacity, which *raises* the per-shard
miss ratio for skewed workloads (less sharing of the hot set's slack).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.traces.synthetic import zipf_probabilities


def shard_load_shares(
    num_objects: int,
    num_shards: int,
    alpha: float,
    seed: int = 0,
) -> List[float]:
    """Fraction of requests landing on each shard under IRM Zipf.

    Objects are assigned to shards by a uniform hash (modeled by a
    seeded permutation), which is exactly what production sharding
    does; the load share of a shard is the sum of its objects' Zipf
    probabilities.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    probs = zipf_probabilities(num_objects, alpha)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, num_shards, size=num_objects)
    shares = np.zeros(num_shards)
    np.add.at(shares, assignment, probs)
    return shares.tolist()


def sharded_throughput(
    num_shards: int,
    per_core_mqps: float,
    load_shares: Sequence[float],
) -> float:
    """System MQPS when each shard runs on its own core.

    A shard saturates when its arrival share times the system
    throughput reaches one core's capacity, so the system caps at
    ``per_core / max(share)``.
    """
    if per_core_mqps <= 0:
        raise ValueError(f"per_core_mqps must be positive, got {per_core_mqps}")
    if len(load_shares) != num_shards:
        raise ValueError("load_shares must have one entry per shard")
    hottest = max(load_shares)
    if hottest <= 0:
        return per_core_mqps * num_shards
    return min(per_core_mqps * num_shards, per_core_mqps / hottest)


def sharding_scaling_curve(
    thread_counts: Sequence[int],
    num_objects: int = 1_000_000,
    alpha: float = 1.0,
    per_core_mqps: float = 5.0,
    seed: int = 0,
) -> Dict[int, float]:
    """System throughput vs shard count under Zipf load imbalance."""
    curve: Dict[int, float] = {}
    for n in thread_counts:
        shares = shard_load_shares(num_objects, n, alpha, seed=seed)
        curve[n] = sharded_throughput(n, per_core_mqps, shares)
    return curve


def imbalance_factor(load_shares: Sequence[float]) -> float:
    """max/mean load ratio: 1.0 = perfectly balanced."""
    if not load_shares:
        raise ValueError("load_shares must be non-empty")
    mean = sum(load_shares) / len(load_shares)
    if mean == 0:
        return 1.0
    return max(load_shares) / mean
