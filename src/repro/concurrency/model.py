"""Throughput-vs-threads models.

Two models over the same :class:`~repro.concurrency.costs.CostProfile`:

* :func:`analytic_throughput` — the classic saturation law.  With
  parallel time W and critical time C per request, n threads deliver
  ``n / (W + C)`` requests per nanosecond until the lock saturates at
  ``1 / C'``, where the effective critical section ``C' = C +
  handoff`` grows with contention (cache-line bouncing), bending
  over-saturated curves downward as in Fig. 8's strict-LRU line.

* :func:`simulate_throughput` — a discrete-event simulation of n
  threads alternating parallel work and a FIFO lock queue, with the
  same handoff cost.  It reproduces the analytic curve within a few
  percent and validates it.
"""

from __future__ import annotations

import heapq
import random
from typing import Iterable, List, Sequence

from repro.concurrency.costs import CostProfile


class ScalingPoint:
    """Throughput at one thread count (one Fig. 8 data point)."""

    __slots__ = ("policy", "threads", "mqps")

    def __init__(self, policy: str, threads: int, mqps: float) -> None:
        self.policy = policy
        self.threads = threads
        self.mqps = mqps

    def __repr__(self) -> str:
        return f"ScalingPoint({self.policy}, n={self.threads}, {self.mqps:.1f} MQPS)"


def analytic_throughput(
    profile: CostProfile,
    threads: int,
    miss_ratio: float,
) -> float:
    """Throughput in million requests/second for ``threads`` threads."""
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if not 0.0 <= miss_ratio <= 1.0:
        raise ValueError(f"miss_ratio must be in [0, 1], got {miss_ratio}")
    parallel = profile.parallel_ns(miss_ratio)
    critical = profile.critical_ns(miss_ratio)
    per_thread_ns = parallel + critical
    if per_thread_ns <= 0:
        raise ValueError("profile has zero total work")
    unconstrained = threads / per_thread_ns  # requests per ns
    if critical <= 0:
        return unconstrained * 1e3  # ns^-1 -> MQPS
    # Contention: once the lock is the bottleneck, each acquisition
    # additionally pays the handoff cost, and the handoff grows mildly
    # with the number of waiters (cache-line bouncing).
    utilization = threads * critical / per_thread_ns
    if utilization <= 1.0:
        return unconstrained * 1e3
    waiters = max(0.0, threads - per_thread_ns / critical)
    effective_critical = critical + profile.handoff_ns * (1.0 + 0.15 * waiters)
    return 1e3 / effective_critical


def simulate_throughput(
    profile: CostProfile,
    threads: int,
    miss_ratio: float,
    requests: int = 200_000,
    seed: int = 0,
) -> float:
    """Discrete-event simulation of ``threads`` threads sharing a lock.

    Each thread loops: draw hit/miss, do parallel work, then (if the
    request has critical work) queue FIFO for the lock and hold it for
    the critical duration plus a handoff.  Returns MQPS.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if requests < threads:
        raise ValueError("requests must be >= threads")
    rng = random.Random(seed)
    # Event heap: (time, sequence, thread_id, phase). Phases: "arrive"
    # at the lock queue; lock service is sequential by lock_free_at.
    heap: List = []
    lock_free_at = 0.0
    completed = 0
    now = 0.0
    seq = 0

    def request_times() -> tuple:
        miss = rng.random() < miss_ratio
        if miss:
            return profile.miss_parallel, profile.miss_critical
        return profile.hit_parallel, profile.hit_critical

    for tid in range(threads):
        parallel, critical = request_times()
        # Jitter thread start to avoid lockstep artifacts.
        start = rng.random() * profile.parallel_ns(miss_ratio)
        heapq.heappush(heap, (start + parallel, seq, tid, critical))
        seq += 1

    while completed < requests and heap:
        now, _, tid, critical = heapq.heappop(heap)
        if critical > 0:
            start_service = max(now, lock_free_at)
            contended = lock_free_at > now
            handoff = profile.handoff_ns if contended else 0.0
            lock_free_at = start_service + critical + handoff
            done = lock_free_at
        else:
            done = now
        completed += 1
        parallel, next_critical = request_times()
        heapq.heappush(heap, (done + parallel, seq, tid, next_critical))
        seq += 1

    if now <= 0:
        return 0.0
    return completed / now * 1e3  # requests per ns -> MQPS


def throughput_curve(
    profile: CostProfile,
    thread_counts: Sequence[int],
    miss_ratio: float,
    use_simulation: bool = False,
    requests: int = 200_000,
    seed: int = 0,
) -> List[ScalingPoint]:
    """Fig. 8 curve for one policy across ``thread_counts``."""
    points = []
    for n in thread_counts:
        if use_simulation:
            mqps = simulate_throughput(
                profile, n, miss_ratio, requests=requests, seed=seed
            )
        else:
            mqps = analytic_throughput(profile, n, miss_ratio)
        points.append(ScalingPoint(profile.name, n, mqps))
    return points


def speedup_over(
    curve_a: Iterable[ScalingPoint],
    curve_b: Iterable[ScalingPoint],
    threads: int,
) -> float:
    """Throughput ratio A/B at a given thread count (e.g. the paper's
    '6x higher than optimized LRU at 16 threads')."""
    a = {p.threads: p.mqps for p in curve_a}
    b = {p.threads: p.mqps for p in curve_b}
    if threads not in a or threads not in b:
        raise KeyError(f"thread count {threads} missing from a curve")
    if b[threads] == 0:
        raise ZeroDivisionError("baseline throughput is zero")
    return a[threads] / b[threads]
