"""Calibrate the analytic throughput model from measured load.

:mod:`repro.concurrency.costs` ships cost profiles transcribed from the
paper's C prototypes.  This module derives a profile from *this*
implementation instead, using a :mod:`repro.service.loadgen` report:
the measured mean hit/miss latencies give the total per-op cost, and
the scaling from one thread to N threads gives the parallel/critical
split via the Amdahl inversion

    speedup = 1 / ((1 - p) + p / n)   =>   p = (1 - 1/speedup) / (1 - 1/n)

where ``p`` is the parallel fraction of per-op work.  The resulting
:class:`~repro.concurrency.costs.CostProfile` plugs straight into
:func:`~repro.concurrency.model.analytic_throughput`.

Honesty note: under CPython's GIL the measured speedup of a pure
in-memory workload hovers near 1, so calibrated profiles report a
serial fraction close to 100% — the calibration faithfully measures
the runtime it runs on, which is exactly the point of having a
measured path next to the paper-derived one (see docs/PERFORMANCE.md).

Two scaling axes can feed the same inversion:

* ``axis="threads"`` — in-process rows; the GIL is part of what is
  measured (the paragraph above).
* ``axis="workers"`` — process-per-shard rows from the ``mp`` backend
  (:class:`~repro.service.mp.MPCacheService`), scaling worker
  *processes* at fixed driver threads and batch size.  Processes
  escape the GIL, so on a multicore host this axis is where the
  parallel fraction finally rises above the in-process ceiling; on a
  single-core host it honestly reports ~0 instead (IPC overhead, no
  parallel gain).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.concurrency.costs import CostProfile


def parallel_fraction(
    single_ops_per_sec: float,
    multi_ops_per_sec: float,
    threads: int,
) -> float:
    """Amdahl parallel fraction implied by a 1-thread vs N-thread pair.

    Clamped to [0, 1]: sub-linear-below-1 speedups (contention overhead
    exceeding any parallel gain) read as fully serial, super-linear
    ones as fully parallel.
    """
    if threads < 2:
        raise ValueError(f"threads must be >= 2 to infer scaling, got {threads}")
    if single_ops_per_sec <= 0 or multi_ops_per_sec <= 0:
        raise ValueError("throughputs must be positive")
    speedup = multi_ops_per_sec / single_ops_per_sec
    if speedup <= 1.0:
        return 0.0
    if speedup >= threads:
        return 1.0
    return (1.0 - 1.0 / speedup) / (1.0 - 1.0 / threads)


def calibrate_profile(
    name: str,
    hit_ns: float,
    miss_ns: float,
    single_ops_per_sec: float,
    multi_ops_per_sec: float,
    threads: int,
    handoff_ns: float = 0.0,
) -> CostProfile:
    """A :class:`CostProfile` from measured costs and measured scaling.

    The one parallel fraction observed for the whole workload is
    applied to both the hit and the miss path — the loadgen cannot
    separate their scaling, only their costs.
    """
    p = parallel_fraction(single_ops_per_sec, multi_ops_per_sec, threads)
    return CostProfile(
        name,
        hit_parallel=hit_ns * p,
        hit_critical=hit_ns * (1.0 - p),
        miss_parallel=miss_ns * p,
        miss_critical=miss_ns * (1.0 - p),
        handoff_ns=handoff_ns,
    )


def _scaling_rows(
    report: Dict[str, Any],
    shards: int,
    axis: str,
) -> tuple:
    """``(single, multi, n_units)`` rows for the requested scaling axis.

    ``axis="threads"`` pairs the 1-thread and highest-thread in-process
    rows at ``shards``; ``axis="workers"`` pairs the 1-worker and
    highest-worker ``mp``-backend rows at the *same* driver thread
    count and batch size (the one axis that must vary is the worker
    count).  Rows from schema-1 reports, which predate the ``backend``
    field, read as in-process.  Socket-frontend rows (schema 4) are
    excluded on both axes: their per-op cost includes protocol and
    socket time, which is not what the analytic model's in-process
    cost profile describes.
    """
    if axis == "threads":
        rows = [
            r for r in report["scenarios"]
            if r["shards"] == shards
            and r.get("backend", "thread") == "thread"
            and r.get("frontend", "inproc") == "inproc"
        ]
        single = next((r for r in rows if r["threads"] == 1), None)
        multi = max(
            (r for r in rows if r["threads"] > 1),
            key=lambda r: r["threads"],
            default=None,
        )
        if single is None or multi is None:
            raise ValueError(
                f"report needs a 1-thread and a multi-thread scenario at "
                f"shards={shards} to calibrate axis='threads'"
            )
        return single, multi, multi["threads"]
    if axis == "workers":
        rows: List[Dict[str, Any]] = [
            r for r in report["scenarios"]
            if r.get("backend", "thread") == "mp"
            and r.get("frontend", "inproc") == "inproc"
        ]
        single = next((r for r in rows if r["shards"] == 1), None)
        if single is not None:
            rows = [
                r for r in rows
                if r["threads"] == single["threads"]
                and r.get("batch_size", 1) == single.get("batch_size", 1)
                # Never pair a pipe row with a shm row (schema 3): the
                # transport changes per-op cost, not parallelism.
                and r.get("transport", "pipe") == single.get("transport",
                                                             "pipe")
            ]
        multi = max(
            (r for r in rows if r["shards"] > 1),
            key=lambda r: r["shards"],
            default=None,
        )
        if single is None or multi is None:
            raise ValueError(
                "report needs mp-backend rows at workers=1 and workers>1 "
                "(same driver threads and batch size) to calibrate "
                "axis='workers'"
            )
        return single, multi, multi["shards"]
    raise ValueError(f"axis must be 'threads' or 'workers', got {axis!r}")


def profile_from_loadgen(
    report: Dict[str, Any],
    shards: int = 1,
    name: Optional[str] = None,
    axis: str = "threads",
) -> CostProfile:
    """Calibrate from a ``run_loadgen`` report along one scaling axis.

    Uses the single-unit scenario for per-op costs and the highest
    unit count present for the scaling pair, where a *unit* is a
    thread (``axis="threads"``, at shard count ``shards``) or an mp
    worker process (``axis="workers"``; ``shards`` is ignored — the
    worker count IS the shard count).  Raises ``ValueError`` when the
    report lacks the needed rows.
    """
    single, multi, n = _scaling_rows(report, shards, axis)
    if name is None:
        suffix = "-measured-mp" if axis == "workers" else "-measured"
        name = f"{report['config']['policy']}{suffix}"
    return calibrate_profile(
        name,
        hit_ns=float(single["hit_ns_mean"]),
        miss_ns=float(single["miss_ns_mean"]),
        single_ops_per_sec=float(single["ops_per_sec"]),
        multi_ops_per_sec=float(multi["ops_per_sec"]),
        threads=n,
    )


def calibration_summary(
    report: Dict[str, Any],
    shards: int = 1,
    axis: str = "threads",
) -> Dict[str, Any]:
    """Measured-vs-model digest for the CLI and BENCH_service.json.

    The ``_1t`` / ``_nt`` key suffixes read "one unit" / "n units" of
    whichever ``axis`` was calibrated; workers-axis summaries add the
    ``workers`` and ``batch_size`` of the scaling pair.
    """
    from repro.concurrency.model import analytic_throughput

    profile = profile_from_loadgen(report, shards=shards, axis=axis)
    single, multi, n = _scaling_rows(report, shards, axis)
    miss_ratio = 1.0 - single["hit_ratio"]
    p = parallel_fraction(single["ops_per_sec"], multi["ops_per_sec"], n)
    summary = {
        "profile": profile.name,
        "axis": axis,
        "parallel_fraction": round(p, 4),
        "serial_fraction": round(1.0 - p, 4),
        "hit_ns": single["hit_ns_mean"],
        "miss_ns": single["miss_ns_mean"],
        "measured_mqps_1t": round(single["ops_per_sec"] / 1e6, 4),
        "measured_mqps_nt": round(multi["ops_per_sec"] / 1e6, 4),
        "threads": multi["threads"],
        "model_mqps_1t": round(
            analytic_throughput(profile, 1, miss_ratio), 4
        ),
        "model_mqps_nt": round(
            analytic_throughput(profile, n, miss_ratio), 4
        ),
    }
    if axis == "workers":
        summary["workers"] = n
        summary["batch_size"] = multi.get("batch_size", 1)
    return summary
