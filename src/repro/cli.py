"""Command-line interface.

Examples::

    s3fifo-repro list-policies
    s3fifo-repro simulate --policy s3fifo --dataset twitter --cache-ratio 0.1
    s3fifo-repro experiment fig06 --scale 0.5
    s3fifo-repro analyze --dataset msr
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

EXPERIMENTS = {
    "fig01": "repro.experiments.fig01_toy",
    "fig02": "repro.experiments.fig02_onehit_curves",
    "fig03": "repro.experiments.fig03_onehit_distribution",
    "fig04": "repro.experiments.fig04_eviction_frequency",
    "table1": "repro.experiments.table1_datasets",
    "fig06": "repro.experiments.fig06_missratio_percentiles",
    "fig07": "repro.experiments.fig07_missratio_by_dataset",
    "fig08": "repro.experiments.fig08_throughput",
    "fig08-native": "repro.experiments.fig08_native",
    "fig09": "repro.experiments.fig09_flash_admission",
    "fig10": "repro.experiments.fig10_demotion",
    "fig11": "repro.experiments.fig11_s_size_sweep",
    "sec52": "repro.experiments.sec52_adversarial",
    "sec523": "repro.experiments.sec523_byte_missratio",
    "sec62": "repro.experiments.sec62_adaptive",
    "sec63": "repro.experiments.sec63_queue_type",
    "ablations": "repro.experiments.ablations",
    "cluster-churn": "repro.experiments.cluster_churn",
    "frontier": "repro.experiments.frontier",
    "net-frontier": "repro.experiments.net_frontier",
    "mrc-fast": "repro.experiments.mrc_fast",
}


def _cmd_list_policies(_args: argparse.Namespace) -> int:
    from repro.cache.registry import policy_names

    names = policy_names(include_offline=True)
    # Group each array-backed twin under its reference policy instead of
    # interleaving alphabetically ("fifo-fast" belongs next to "fifo").
    twins = {name: f"{name}-fast" for name in names if f"{name}-fast" in names}
    grouped_fast = set(twins.values())
    for name in names:
        if name in grouped_fast:
            continue
        print(name)
        if name in twins:
            print(f"  {twins[name]}  (fast twin, bit-identical)")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.cache.registry import create_policy
    from repro.sim.simulator import simulate
    from repro.traces.compiled import compile_trace
    from repro.traces.datasets import generate_dataset_trace
    from repro.traces.synthetic import zipf_trace

    if args.dataset:
        trace = generate_dataset_trace(
            args.dataset, args.trace_index, scale=args.scale, seed=args.seed
        )
    else:
        trace = zipf_trace(
            num_objects=args.objects,
            num_requests=args.requests,
            alpha=args.alpha,
            seed=args.seed,
        )
    # Compile so --engine applies (engines only run on compiled traces).
    compiled = compile_trace(trace)
    footprint = compiled.num_objects
    capacity = args.cache_size or max(10, int(footprint * args.cache_ratio))
    policy = create_policy(args.policy, capacity=capacity)
    result = simulate(policy, compiled, engine=args.engine)
    print(f"trace:          {args.dataset or f'zipf-{args.alpha}'}")
    print(f"requests:       {result.requests}")
    print(f"footprint:      {footprint} objects")
    print(f"cache size:     {capacity}")
    print(f"policy:         {args.policy}")
    print(f"engine:         {args.engine}")
    print(f"miss ratio:     {result.miss_ratio:.4f}")
    print(f"evictions:      {result.evictions}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module_name = EXPERIMENTS.get(args.name)
    if module_name is None:
        print(
            f"unknown experiment {args.name!r}; known: "
            f"{', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    module = importlib.import_module(module_name)
    kwargs = {}
    run_params = module.run.__code__.co_varnames[: module.run.__code__.co_argcount]
    if "scale" in run_params:
        kwargs["scale"] = args.scale
    if "seed" in run_params:
        kwargs["seed"] = args.seed
    if "processes" in run_params:
        kwargs["processes"] = args.processes
    rows = module.run(**kwargs)
    print(module.format_table(rows))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.traces.analysis import (
        one_hit_wonder_curve,
        one_hit_wonder_ratio,
        unique_objects,
    )
    from repro.traces.datasets import generate_dataset_trace
    from repro.traces.stats import summarize

    trace = generate_dataset_trace(
        args.dataset, args.trace_index, scale=args.scale, seed=args.seed
    )
    print(f"dataset:     {args.dataset} (trace {args.trace_index})")
    print(f"requests:    {len(trace)}")
    print(f"objects:     {unique_objects(trace)}")
    print(f"ohw (full):  {one_hit_wonder_ratio(trace):.3f}")
    for frac, ratio in one_hit_wonder_curve(trace, (0.01, 0.1, 0.5)):
        print(f"ohw ({frac:>4.0%} of objects): {ratio:.3f}")
    summary = summarize(trace)
    print(f"zipf alpha:  {summary['zipf_alpha']:.2f}")
    print(f"req/object:  {summary['requests_per_object']:.1f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Simulate several policies on one trace and rank them."""
    from repro.cache.registry import create_policy, policy_names
    from repro.sim.simulator import simulate
    from repro.traces.datasets import generate_dataset_trace
    from repro.traces.synthetic import zipf_trace

    if args.dataset:
        trace = generate_dataset_trace(
            args.dataset, args.trace_index, scale=args.scale, seed=args.seed
        )
    else:
        trace = zipf_trace(
            args.objects, args.requests, alpha=args.alpha, seed=args.seed
        )
    capacity = args.cache_size or max(10, int(len(set(trace)) * args.cache_ratio))
    policies = args.policies.split(",") if args.policies else policy_names()
    results = []
    for name in policies:
        policy = create_policy(name.strip(), capacity=capacity)
        results.append((simulate(policy, list(trace)).miss_ratio, name.strip()))
    results.sort()
    print(f"cache = {capacity} objects, {len(trace)} requests")
    for rank, (mr, name) in enumerate(results, start=1):
        print(f"{rank:3d}. {name:14s} miss ratio = {mr:.4f}")
    return 0


def _cmd_mrc(args: argparse.Namespace) -> int:
    """Miss-ratio curve: exact for LRU and the FIFO family (one pass),
    sampled for everything else."""
    from repro.sim.mrc import fifo_mrc, lru_mrc, s3fifo_mrc, sampled_mrc
    from repro.sim.multisim import MULTISIM_POLICIES
    from repro.traces.datasets import generate_dataset_trace
    from repro.traces.synthetic import zipf_trace

    if args.dataset:
        trace = generate_dataset_trace(
            args.dataset, args.trace_index, scale=args.scale, seed=args.seed
        )
    else:
        trace = zipf_trace(
            args.objects, args.requests, alpha=args.alpha, seed=args.seed
        )
    footprint = len(set(trace))
    sizes = [
        max(1, int(footprint * frac))
        for frac in (0.01, 0.02, 0.05, 0.1, 0.2, 0.5)
    ]
    method_arg = args.method
    if method_arg == "auto":
        # An explicit --rate < 1 asks for sampling; otherwise the
        # cheapest exact method wins where one exists.
        if args.policy == "lru" and args.rate >= 1.0:
            method_arg = "exact"
        elif args.policy in MULTISIM_POLICIES and args.rate >= 1.0:
            method_arg = "single-pass"
        elif args.policy == "s3fifo" and args.engine == "vector":
            # An explicit vector request picks the exact per-size
            # vector path over the default sampled estimate.
            method_arg = "single-pass"
        else:
            method_arg = "sampled"
    if method_arg == "exact" and args.policy in MULTISIM_POLICIES:
        method_arg = "single-pass"  # the FIFO family's exact method
    if method_arg == "exact":
        if args.policy != "lru":
            print(
                f"error: no exact MRC method for {args.policy!r} "
                f"(exact covers lru via Mattson and {MULTISIM_POLICIES} "
                "via --method single-pass); use --method sampled",
                file=sys.stderr,
            )
            return 2
        curve = lru_mrc(trace, sizes=sizes)
        method = "exact (Mattson)"
    elif method_arg == "single-pass":
        if args.policy in MULTISIM_POLICIES:
            fifo_engine = "vector" if args.engine == "vector" else "auto"
            curve = fifo_mrc(
                trace, sizes=sizes, policy=args.policy, engine=fifo_engine
            )
            method = f"single-pass (exact, {fifo_engine})"
        elif args.policy == "s3fifo":
            if args.engine == "vector":
                # Per-size vector passes: the exact curve, no sampling.
                curve = s3fifo_mrc(trace, sizes, engine="vector")
                method = "per-size vector (exact)"
            else:
                curve = s3fifo_mrc(
                    trace,
                    sizes,
                    rate=min(args.rate, 1.0) if args.rate < 1.0 else 0.25,
                    seed=args.seed,
                    ensembles=args.ensembles,
                )
                method = (
                    f"single-pass sampled (rate="
                    f"{min(args.rate, 1.0) if args.rate < 1.0 else 0.25}, "
                    f"ensembles={args.ensembles})"
                )
        else:
            print(
                f"error: --method single-pass covers {MULTISIM_POLICIES} "
                "(exact) and s3fifo (sampled); use --method sampled for "
                f"{args.policy!r}",
                file=sys.stderr,
            )
            return 2
    else:
        curve = sampled_mrc(
            args.policy,
            trace,
            sizes=sizes,
            rate=min(args.rate, 1.0),
            seed=args.seed,
            ensembles=args.ensembles,
            engine=args.engine,
        )
        method = f"sampled (rate={args.rate}, ensembles={args.ensembles})"
    print(f"policy: {args.policy}   method: {method}")
    for size, mr in zip(curve.sizes, curve.miss_ratios):
        bar = "#" * int(mr * 50)
        print(f"  size {size:>8d}  miss {mr:.3f}  {bar}")
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    """Fault-injection demo: outage degradation, crash recovery,
    trace corruption, and the policy sanitizer — all seed-deterministic."""
    import tempfile
    from pathlib import Path

    from repro.flash.admission import S3FifoAdmission
    from repro.flash.flashcache import HybridFlashCache
    from repro.resilience import (
        CRASH,
        FLASH_WRITE,
        TRACE_CORRUPTION,
        FaultPlan,
        RetryPolicy,
        corrupt_binary_trace,
        crash_recovery_experiment,
        run_checked,
    )
    from repro.traces.readers import (
        SkippedRecords,
        read_binary_trace,
        write_binary_trace,
    )
    from repro.traces.synthetic import zipf_trace

    trace = zipf_trace(
        num_objects=args.objects,
        num_requests=args.requests,
        alpha=args.alpha,
        seed=args.seed,
    )
    n = len(trace)

    print("== flash outage: degradation and recovery ==")
    outage = FaultPlan().add(FLASH_WRITE, n // 4, n // 2)
    hybrid = HybridFlashCache(
        dram_capacity=max(10, args.objects // 100),
        flash_capacity=max(100, args.objects // 10),
        admission=S3FifoAdmission(ghost_entries=args.objects // 10),
        faults=outage,
        retry=RetryPolicy(max_attempts=3, base_delay=2.0, seed=args.seed),
    )
    result = hybrid.run(trace)
    print(f"requests:           {result.requests}")
    print(f"miss ratio:         {result.miss_ratio:.4f}")
    print(f"degraded requests:  {result.degraded_requests}")
    print(f"dropped writes:     {result.dropped_writes}")
    print(f"write retries:      {result.flash_write_retries}")
    print(f"bypass entries:     {result.bypass_entries}")
    print(f"recovered:          {not hybrid.bypassed}")

    print("\n== crash recovery: cold vs. warm restart ==")
    crash_plan = FaultPlan().add(CRASH, n // 2, n // 2 + 1)
    recovery = crash_recovery_experiment(
        trace,
        capacity=max(10, args.objects // 10),
        policy="s3fifo",
        plan=crash_plan,
    )
    print(f"crash at request:   {recovery.crash_at}")
    print(f"cold-restart miss:  {recovery.cold_miss_ratio:.4f}")
    print(f"warm-restart miss:  {recovery.warm_miss_ratio:.4f}")
    print(f"recovery benefit:   {recovery.recovery_benefit:+.4f}")

    print("\n== trace corruption: strict=False salvage ==")
    corruption = FaultPlan().add(TRACE_CORRUPTION, 1, max(2, n // 20))
    with tempfile.TemporaryDirectory() as tmp:
        clean = Path(tmp) / "clean.bin"
        dirty = Path(tmp) / "dirty.bin"
        write_binary_trace(clean, trace)
        corrupted = corrupt_binary_trace(clean, dirty, corruption)
        skipped = SkippedRecords()
        salvaged = sum(
            1 for _ in read_binary_trace(dirty, strict=False, skipped=skipped)
        )
    print(f"records corrupted:  {corrupted}")
    print(f"records skipped:    {skipped.count}")
    print(f"records salvaged:   {salvaged}")

    print("\n== policy sanitizer ==")
    from repro.cache.registry import create_policy

    policy = create_policy("s3fifo", capacity=max(10, args.objects // 10))
    checked, _hits = run_checked(policy, trace)
    print(f"invariant checks:   {checked.checks_run} (all clean)")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    """Reference-vs-fast throughput benchmark; writes BENCH_perf.json."""
    from repro.perf.bench import (
        DEFAULT_PAIRS,
        format_report,
        run_perf_bench,
        write_report,
    )

    if args.pairs:
        pairs = []
        for spec in args.pairs.split(","):
            ref_name, _, fast_name = spec.partition(":")
            if not ref_name or not fast_name:
                print(
                    f"bad pair {spec!r}; expected reference:fast",
                    file=sys.stderr,
                )
                return 2
            pairs.append((ref_name.strip(), fast_name.strip()))
    else:
        pairs = list(DEFAULT_PAIRS)
    report = run_perf_bench(
        pairs=pairs,
        num_objects=args.objects,
        num_requests=args.requests,
        alpha=args.alpha,
        cache_ratio=args.cache_ratio,
        seed=args.seed,
    )
    print(format_report(report))
    path = write_report(report, args.out)
    print(f"wrote {path}")
    return 0


def _cmd_walkthrough(args: argparse.Namespace) -> int:
    """Print the Fig. 5 style state trace of S3-FIFO on a request list."""
    from repro.core.walkthrough import (
        DEMO_TRACE,
        format_walkthrough,
        walkthrough,
    )

    if args.trace:
        trace = [key.strip() for key in args.trace.split(",") if key.strip()]
    else:
        trace = DEMO_TRACE
    steps = walkthrough(trace, capacity=args.capacity)
    print(format_walkthrough(steps))
    return 0


def _serve_network(args: argparse.Namespace, service) -> int:
    """Network-server mode of ``serve``: listen until SIGINT/SIGTERM,
    then drain gracefully (stop accepting, answer accepted in-flight
    commands, bounded deadline) and tear the backend down.

    Exits 0 on a clean drain; a bind failure prints one line to stderr
    and exits 2 — no traceback, so supervisors and shell scripts get a
    parseable failure.
    """
    import asyncio
    import signal

    from repro.netsrv.server import CacheServer
    from repro.obs import MetricsRegistry

    server = CacheServer(
        service,
        host=args.host,
        resp_port=args.resp_port,
        memcached_port=args.memcached_port,
        max_connections=args.max_connections,
        idle_timeout=args.idle_timeout,
        metrics=MetricsRegistry(),
    )

    async def _run() -> int:
        try:
            await server.start()
        except OSError as exc:
            ports = [
                f"{proto} port {port}"
                for proto, port in (("resp", args.resp_port),
                                    ("memcached", args.memcached_port))
                if port is not None
            ]
            print(
                f"error: cannot bind {args.host} "
                f"({', '.join(ports)}): {exc}",
                file=sys.stderr,
            )
            return 2
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        if server.resp_port is not None:
            print(f"resp: listening on {args.host}:{server.resp_port}",
                  flush=True)
        if server.memcached_port is not None:
            print(
                f"memcached: listening on "
                f"{args.host}:{server.memcached_port}",
                flush=True,
            )
        await stop.wait()
        print("draining: accepting no new connections, finishing "
              "in-flight commands...", flush=True)
        await server.drain(timeout=args.drain_timeout)
        return 0

    try:
        return asyncio.run(_run())
    finally:
        # The server never owns the backend: the phased mp/cluster
        # teardown (and the plain close for thread backends) runs
        # here, after the drain has answered everything accepted.
        if hasattr(service, "close"):
            service.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    """Live service demo: replay a Zipf stream read-through and compare
    the service's miss ratio against the offline simulator's.  With
    ``--resp-port``/``--memcached-port``, serve the backend over real
    sockets instead (see :func:`_serve_network`)."""
    import threading
    import time

    from repro.cache.registry import create_policy
    from repro.service.loadgen import build_service, counters_snapshot
    from repro.sim.simulator import simulate
    from repro.traces.synthetic import zipf_trace

    network = (args.resp_port is not None
               or args.memcached_port is not None)
    if not network:
        trace = zipf_trace(
            num_objects=args.objects,
            num_requests=args.requests,
            alpha=args.alpha,
            seed=args.seed,
        )
    if args.transport != "pipe" and args.backend != "mp":
        print(f"--transport {args.transport} requires --backend mp",
              file=sys.stderr)
        return 2
    if args.backend == "mp":
        from repro.service.mp import MPCacheService

        num_shards = args.workers
        capacity = max(num_shards, int(args.objects * args.cache_ratio))
        service = MPCacheService(
            capacity, args.policy, num_workers=num_shards,
            transport=args.transport,
            checked=args.checked,
        )
    elif args.backend == "cluster":
        from repro.cluster import ClusterCacheService

        num_shards = args.nodes
        capacity = max(num_shards, int(args.objects * args.cache_ratio))
        service = ClusterCacheService(
            capacity, args.policy, num_nodes=num_shards,
            replication=args.replication, vnodes=args.vnodes,
            checked=args.checked,
        )
    else:
        num_shards = args.shards
        capacity = max(num_shards, int(args.objects * args.cache_ratio))
        service = build_service(
            capacity, args.policy, num_shards, checked=args.checked
        )
    if network:
        return _serve_network(args, service)
    ttl = args.ttl
    stop_watch = threading.Event()
    watcher = None
    if args.watch is not None:
        if args.watch <= 0:
            print("--watch takes a positive number of seconds",
                  file=sys.stderr)
            return 2

        def _watch() -> None:
            start = time.perf_counter()
            while not stop_watch.wait(args.watch):
                snap = counters_snapshot(
                    service, time.perf_counter() - start
                )
                try:
                    print(
                        f"[watch +{snap['t_s']:8.2f}s] "
                        f"gets={snap['gets']:,} "
                        f"hit={snap['hit_ratio']:.4f} "
                        f"sets={snap['sets']:,}",
                        flush=True,
                    )
                except BrokenPipeError:
                    return  # reader went away; keep replaying quietly

        watcher = threading.Thread(target=_watch, daemon=True)
        watcher.start()
    try:
        if args.batch > 1:
            for i in range(0, len(trace), args.batch):
                batch = trace[i:i + args.batch]
                values = service.get_many(batch)
                missed = [(k, k) for k, v in zip(batch, values) if v is None]
                if missed:
                    if ttl is not None:
                        service.set_many(missed, ttl=ttl)
                    else:
                        service.set_many(missed)
        else:
            for key in trace:
                if service.get(key) is None:
                    if ttl is not None:
                        service.set(key, key, ttl=ttl)
                    else:
                        service.set(key, key)
        if args.backend == "cluster":
            stats = service.drain()  # graceful: sweep + final snapshot
        else:
            stats = service.stats()
        shard_ops = (
            service.ops_per_shard() if hasattr(service, "ops_per_shard")
            else None
        )
    finally:
        if watcher is not None:
            stop_watch.set()
            watcher.join()
        if args.backend in ("mp", "cluster"):
            service.close()
    live_miss = 1.0 - stats["hit_ratio"]
    unit = (
        f"worker process(es) over {args.transport}" if args.backend == "mp"
        else "node process(es)" if args.backend == "cluster"
        else "shard(s)"
    )
    print(f"policy:          {args.policy} x {num_shards} {unit}")
    print(f"capacity:        {capacity}")
    print(f"requests:        {stats['gets']} gets, {stats['sets']} sets")
    print(f"live miss ratio: {live_miss:.4f}")
    print(f"objects held:    {stats['objects']}")
    print(f"evictions:       {stats['evictions']}")
    if ttl is not None:
        print(f"expired:         {stats['expired']} (ttl={ttl:g}s)")
    if num_shards > 1 and shard_ops is not None:
        from repro.concurrency.sharding import imbalance_factor

        print(f"shard ops:       {shard_ops}")
        print(f"imbalance:       {imbalance_factor(shard_ops):.3f} (max/mean)")
    if args.backend == "cluster":
        health = " ".join(
            f"{nid}:{'up' if up else 'DOWN'}"
            for nid, up in stats["node_health"].items()
        )
        print(f"nodes:           {stats['nodes_up']}/{stats['num_nodes']} up "
              f"(R={stats['replication']}, vnodes={stats['vnodes']}) "
              f"[{health}]")
        print(f"failovers:       {stats['failovers']}")
        print(f"read repairs:    {stats['read_repairs']}")
        print(f"degraded ops:    {stats['degraded_ops']}")
    if ttl is None:
        offline = simulate(
            create_policy(args.policy, capacity=capacity), trace
        )
        print(f"offline miss:    {offline.miss_ratio:.4f} "
              f"(delta {live_miss - offline.miss_ratio:+.4f})")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Concurrent load generator; writes BENCH_service.json."""
    from repro.concurrency.calibrate import calibration_summary
    from repro.perf.bench import write_report
    from repro.service.loadgen import (
        combine_reports,
        format_report,
        run_loadgen,
        run_net_loadgen,
    )

    try:
        shard_counts = [int(s) for s in args.shards.split(",")]
        thread_counts = [int(t) for t in args.threads.split(",")]
        worker_counts = [int(w) for w in args.workers.split(",")]
        node_counts = [int(n) for n in args.nodes.split(",")]
        connection_counts = [int(c) for c in args.connections.split(",")]
        pipeline_depths = [int(p) for p in args.pipeline.split(",")]
    except ValueError:
        print("--shards/--threads/--workers/--nodes/--connections/"
              "--pipeline take comma-separated integers", file=sys.stderr)
        return 2
    backends = [b.strip() for b in args.backend.split(",")]
    unknown = set(backends) - {"thread", "mp", "cluster"}
    if unknown or not backends:
        print(f"--backend takes a comma-separated subset of "
              f"thread,mp,cluster; got {args.backend!r}", file=sys.stderr)
        return 2
    transports = [t.strip() for t in args.transport.split(",")]
    unknown = set(transports) - {"pipe", "shm"}
    if unknown or not transports:
        print(f"--transport takes a comma-separated subset of pipe,shm; "
              f"got {args.transport!r}", file=sys.stderr)
        return 2
    if transports != ["pipe"] and "mp" not in backends:
        print("--transport is an mp-backend axis; add 'mp' to --backend",
              file=sys.stderr)
        return 2
    frontends = [f.strip() for f in args.frontend.split(",")]
    unknown = set(frontends) - {"inproc", "resp", "memcached"}
    if unknown or not frontends:
        print(f"--frontend takes a comma-separated subset of "
              f"inproc,resp,memcached; got {args.frontend!r}",
              file=sys.stderr)
        return 2
    socket_frontends = [f for f in frontends if f != "inproc"]
    workload = dict(
        num_objects=args.objects,
        num_requests=args.requests,
        alpha=args.alpha,
        cache_ratio=args.cache_ratio,
        seed=args.seed,
        policy=args.policy,
        mode=args.mode,
        open_rate=args.rate,
        checked=args.checked,
        ttl=args.ttl,
    )
    reports = []
    for backend in backends:
        if "inproc" not in frontends:
            break  # socket-only run: skip the in-process matrices
        if backend == "thread":
            reports.append(run_loadgen(
                shard_counts=shard_counts,
                thread_counts=thread_counts,
                batch_size=args.batch,
                **workload,
            ))
        elif backend == "mp":
            # The mp axis scales worker processes under one driver
            # thread; batches amortize the per-operation IPC cost and
            # the transport axis (pipe vs shm rings) attacks the cost
            # itself — one report per transport.
            for transport in transports:
                reports.append(run_loadgen(
                    shard_counts=worker_counts,
                    thread_counts=(1,),
                    backend="mp",
                    batch_size=args.batch,
                    transport=transport,
                    **workload,
                ))
        else:
            # The cluster axis scales node processes; rows carry the
            # error-rate and node-health columns.
            reports.append(run_loadgen(
                shard_counts=node_counts,
                thread_counts=(1,),
                backend="cluster",
                batch_size=args.batch,
                replication=args.replication,
                vnodes=args.vnodes,
                **workload,
            ))
    if socket_frontends:
        # The socket matrix (frontends x connections x pipeline depths)
        # runs once per backend at that backend's largest worker axis,
        # so socket rows are comparable to the best in-process rows.
        net_workload = dict(
            num_objects=args.objects,
            num_requests=args.requests,
            alpha=args.alpha,
            cache_ratio=args.cache_ratio,
            seed=args.seed,
            policy=args.policy,
            checked=args.checked,
            ttl=args.ttl,
            connection_counts=connection_counts,
            pipeline_depths=pipeline_depths,
            frontends=socket_frontends,
        )
        for backend in backends:
            if backend == "thread":
                reports.append(run_net_loadgen(
                    num_shards=max(shard_counts), **net_workload,
                ))
            elif backend == "mp":
                for transport in transports:
                    reports.append(run_net_loadgen(
                        backend="mp",
                        num_shards=max(worker_counts),
                        transport=transport,
                        **net_workload,
                    ))
            else:
                reports.append(run_net_loadgen(
                    backend="cluster",
                    num_shards=max(node_counts),
                    replication=args.replication,
                    vnodes=args.vnodes,
                    **net_workload,
                ))
    report = reports[0] if len(reports) == 1 else combine_reports(reports)
    try:
        report["calibration"] = calibration_summary(
            report, shards=min(shard_counts)
        )
    except ValueError:
        pass  # needs both a 1-thread and a multi-thread row
    if "mp" in backends:
        try:
            report["calibration_native"] = calibration_summary(
                report, axis="workers"
            )
        except ValueError:
            pass  # needs a 1-worker and a multi-worker row
    print(format_report(report))
    calibration = report.get("calibration")
    if calibration:
        print(
            f"calibrated {calibration['profile']}: "
            f"{calibration['serial_fraction']:.0%} serial, "
            f"hit {calibration['hit_ns']}ns / miss {calibration['miss_ns']}ns"
        )
    native = report.get("calibration_native")
    if native:
        print(
            f"calibrated {native['profile']} (workers axis): "
            f"{native['serial_fraction']:.0%} serial at "
            f"{native['workers']} workers, batch {native['batch_size']}"
        )
    path = write_report(report, args.out)
    print(f"wrote {path}")
    return 0


def _cmd_export_metrics(args: argparse.Namespace) -> int:
    """Replay a Zipf workload against a fully instrumented service and
    export the resulting metrics registry (Prometheus text or JSON)."""
    from repro.obs import (
        EventTracer,
        MetricsRegistry,
        dump_on_error,
        to_json,
        to_prometheus,
    )
    from repro.service.loadgen import build_service
    from repro.traces.synthetic import zipf_trace

    trace = zipf_trace(
        num_objects=args.objects,
        num_requests=args.requests,
        alpha=args.alpha,
        seed=args.seed,
    )
    capacity = max(args.shards, int(args.objects * args.cache_ratio))
    registry = MetricsRegistry()
    tracer = EventTracer(
        capacity=256, sample_every=max(1, args.requests // 4096)
    )
    service = build_service(
        capacity,
        args.policy,
        args.shards,
        metrics=registry,
        tracer=tracer,
        instrument_policy=True,
        default_ttl=args.ttl,
    )

    def _replay() -> None:
        for key in trace:
            if service.get(key) is None:
                service.set(key, key)

    # The tracer tail prints to stderr if the replay dies mid-stream.
    dump_on_error(tracer, _replay)
    service.sweep()
    text = (
        to_prometheus(registry) if args.format == "prom"
        else to_json(registry)
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="s3fifo-repro",
        description="S3-FIFO (SOSP'23) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-policies", help="list registered eviction policies")

    sim = sub.add_parser("simulate", help="simulate one policy on one trace")
    sim.add_argument("--policy", default="s3fifo")
    sim.add_argument("--dataset", default=None, help="dataset stand-in name")
    sim.add_argument("--trace-index", type=int, default=0)
    sim.add_argument("--objects", type=int, default=10_000)
    sim.add_argument("--requests", type=int, default=200_000)
    sim.add_argument("--alpha", type=float, default=1.0)
    sim.add_argument("--cache-ratio", type=float, default=0.1)
    sim.add_argument("--cache-size", type=int, default=None)
    sim.add_argument("--scale", type=float, default=1.0)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--engine",
        choices=("auto", "scalar", "vector"),
        default="auto",
        help="compiled-trace engine: auto routes the FIFO family to "
        "the vectorized hit-run engine, scalar forces the per-request "
        "paths, vector requires vector eligibility",
    )

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))
    exp.add_argument("--scale", type=float, default=1.0)
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--processes", type=int, default=None)

    ana = sub.add_parser("analyze", help="one-hit-wonder analysis of a trace")
    ana.add_argument("--dataset", required=True)
    ana.add_argument("--trace-index", type=int, default=0)
    ana.add_argument("--scale", type=float, default=1.0)
    ana.add_argument("--seed", type=int, default=0)

    cmp_ = sub.add_parser("compare", help="rank policies on one trace")
    cmp_.add_argument("--policies", default=None,
                      help="comma-separated names (default: all)")
    cmp_.add_argument("--dataset", default=None)
    cmp_.add_argument("--trace-index", type=int, default=0)
    cmp_.add_argument("--objects", type=int, default=10_000)
    cmp_.add_argument("--requests", type=int, default=200_000)
    cmp_.add_argument("--alpha", type=float, default=1.0)
    cmp_.add_argument("--cache-ratio", type=float, default=0.1)
    cmp_.add_argument("--cache-size", type=int, default=None)
    cmp_.add_argument("--scale", type=float, default=1.0)
    cmp_.add_argument("--seed", type=int, default=0)

    mrc = sub.add_parser("mrc", help="miss-ratio curve for one policy")
    mrc.add_argument("--policy", default="lru")
    mrc.add_argument(
        "--method",
        choices=("auto", "exact", "sampled", "single-pass"),
        default="auto",
        help="auto picks the cheapest exact method (Mattson for lru, "
        "single-pass for the FIFO family) and falls back to sampled",
    )
    mrc.add_argument("--dataset", default=None)
    mrc.add_argument("--trace-index", type=int, default=0)
    mrc.add_argument("--objects", type=int, default=10_000)
    mrc.add_argument("--requests", type=int, default=200_000)
    mrc.add_argument("--alpha", type=float, default=1.0)
    mrc.add_argument("--rate", type=float, default=1.0,
                     help="spatial sampling rate (<1 enables SHARDS)")
    mrc.add_argument("--ensembles", type=int, default=3)
    mrc.add_argument("--scale", type=float, default=1.0)
    mrc.add_argument("--seed", type=int, default=0)
    mrc.add_argument(
        "--engine",
        choices=("auto", "scalar", "vector"),
        default="auto",
        help="per-size simulation engine; --engine vector makes the "
        "s3fifo single-pass method exact (per-size vector passes) "
        "and switches the FIFO family from multisim to per-size "
        "vector passes",
    )

    res = sub.add_parser(
        "resilience",
        help="fault-injection demo: outage degradation, crash recovery, "
        "trace corruption salvage, and the policy sanitizer",
    )
    res.add_argument("--objects", type=int, default=2_000)
    res.add_argument("--requests", type=int, default=20_000)
    res.add_argument("--alpha", type=float, default=1.0)
    res.add_argument("--seed", type=int, default=0)

    perf = sub.add_parser(
        "perf",
        help="reference-vs-fast throughput benchmark (BENCH_perf.json)",
    )
    perf.add_argument("--objects", type=int, default=100_000)
    perf.add_argument("--requests", type=int, default=1_000_000)
    perf.add_argument("--alpha", type=float, default=1.0)
    perf.add_argument("--cache-ratio", type=float, default=0.1)
    perf.add_argument("--seed", type=int, default=42)
    perf.add_argument(
        "--pairs", default=None,
        help="comma-separated reference:fast pairs (default: all built-in)",
    )
    perf.add_argument(
        "--out", default="benchmarks/results/BENCH_perf.json",
        help="output JSON path",
    )

    serve = sub.add_parser(
        "serve",
        help="live cache service demo (read-through Zipf replay, "
        "offline-parity check)",
    )
    serve.add_argument("--policy", default="s3fifo")
    serve.add_argument("--shards", type=int, default=1)
    serve.add_argument("--backend", choices=("inproc", "mp", "cluster"),
                       default="inproc",
                       help="inproc: in-process shards; mp: one worker "
                       "process per shard (see --workers); cluster: "
                       "replicated node processes (see --nodes)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker process count (mp backend)")
    serve.add_argument("--transport", choices=("pipe", "shm"),
                       default="pipe",
                       help="mp parent<->worker channel: duplex pipes "
                       "or shared-memory ring buffers")
    serve.add_argument("--nodes", type=int, default=3,
                       help="node process count (cluster backend)")
    serve.add_argument("--replication", type=int, default=2,
                       help="copies per key (cluster backend)")
    serve.add_argument("--vnodes", type=int, default=64,
                       help="ring points per node (cluster backend)")
    serve.add_argument("--batch", type=int, default=1,
                       help="replay in get_many/set_many batches of this "
                       "size (amortizes IPC on the mp backend)")
    serve.add_argument("--objects", type=int, default=10_000)
    serve.add_argument("--requests", type=int, default=100_000)
    serve.add_argument("--alpha", type=float, default=1.0)
    serve.add_argument("--cache-ratio", type=float, default=0.1)
    serve.add_argument("--ttl", type=float, default=None,
                       help="expire demo entries after this many seconds")
    serve.add_argument("--checked", action="store_true",
                       help="run the invariant sanitizer on every access")
    serve.add_argument("--watch", type=float, default=None, metavar="SECS",
                       help="print a one-line stats snapshot every SECS "
                       "seconds while the replay runs")
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--resp-port", type=int, default=None,
                       metavar="PORT",
                       help="serve the backend over the Redis RESP2 "
                       "protocol on this port (0 = ephemeral) instead "
                       "of running the replay demo")
    serve.add_argument("--memcached-port", type=int, default=None,
                       metavar="PORT",
                       help="serve the memcached text protocol on this "
                       "port (0 = ephemeral); combines with --resp-port")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for the network server")
    serve.add_argument("--max-connections", type=int, default=1024,
                       help="accept limit across both protocols")
    serve.add_argument("--idle-timeout", type=float, default=None,
                       metavar="SECS",
                       help="close connections idle for SECS seconds")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       metavar="SECS",
                       help="graceful-shutdown deadline: in-flight "
                       "commands get this long before force-close")

    lg = sub.add_parser(
        "loadgen",
        help="concurrent service load generator (BENCH_service.json)",
    )
    lg.add_argument("--policy", default="s3fifo")
    lg.add_argument("--shards", default="1,4",
                    help="comma-separated shard counts (thread backend)")
    lg.add_argument("--threads", default="1,4",
                    help="comma-separated thread counts (thread backend)")
    lg.add_argument("--backend", default="thread",
                    help="comma-separated subset of thread,mp,cluster; "
                    "each backend runs its own matrix and the rows land "
                    "in one combined report")
    lg.add_argument("--workers", default="1,4",
                    help="comma-separated worker-process counts "
                    "(mp backend)")
    lg.add_argument("--transport", default="pipe",
                    help="comma-separated subset of pipe,shm (mp "
                    "backend); the mp matrix runs once per transport")
    lg.add_argument("--nodes", default="3",
                    help="comma-separated node-process counts "
                    "(cluster backend)")
    lg.add_argument("--replication", type=int, default=2,
                    help="copies per key (cluster backend)")
    lg.add_argument("--vnodes", type=int, default=64,
                    help="ring points per node (cluster backend)")
    lg.add_argument("--batch", type=int, default=1,
                    help="get_many/set_many batch size (1 = per-key ops)")
    lg.add_argument("--frontend", default="inproc",
                    help="comma-separated subset of inproc,resp,"
                    "memcached; socket frontends drive the backend "
                    "through a real CacheServer on ephemeral ports")
    lg.add_argument("--connections", default="1,4",
                    help="comma-separated client connection counts "
                    "(socket frontends)")
    lg.add_argument("--pipeline", default="1,16",
                    help="comma-separated pipeline depths: commands "
                    "written per socket round-trip (socket frontends)")
    lg.add_argument("--objects", type=int, default=10_000)
    lg.add_argument("--requests", type=int, default=100_000)
    lg.add_argument("--alpha", type=float, default=1.0)
    lg.add_argument("--cache-ratio", type=float, default=0.1)
    lg.add_argument("--mode", choices=("closed", "open"), default="closed")
    lg.add_argument("--rate", type=float, default=50_000.0,
                    help="per-thread target ops/sec (open mode)")
    lg.add_argument("--checked", action="store_true",
                    help="run the invariant sanitizer on every access")
    lg.add_argument("--ttl", type=float, default=None,
                    help="store entries with this default TTL in seconds "
                    "(requires a removal-capable policy)")
    lg.add_argument("--seed", type=int, default=42)
    lg.add_argument(
        "--out", default="benchmarks/results/BENCH_service.json",
        help="output JSON path",
    )

    export = sub.add_parser(
        "export-metrics",
        aliases=["stats"],
        help="replay an instrumented Zipf workload and export the "
        "metrics registry (Prometheus text or JSON)",
    )
    export.add_argument("--policy", default="s3fifo")
    export.add_argument("--shards", type=int, default=1)
    export.add_argument("--objects", type=int, default=10_000)
    export.add_argument("--requests", type=int, default=100_000)
    export.add_argument("--alpha", type=float, default=1.0)
    export.add_argument("--cache-ratio", type=float, default=0.1)
    export.add_argument("--ttl", type=float, default=None,
                        help="store entries with this default TTL in "
                        "seconds (requires a removal-capable policy)")
    export.add_argument("--format", choices=("prom", "json"),
                        default="prom")
    export.add_argument("--out", default=None,
                        help="write the export here instead of stdout")
    export.add_argument("--seed", type=int, default=42)

    walk = sub.add_parser(
        "walkthrough", help="Fig. 5 style step-by-step S3-FIFO state trace"
    )
    walk.add_argument(
        "--trace", default=None,
        help="comma-separated keys (default: the documentation demo)",
    )
    walk.add_argument("--capacity", type=int, default=6)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.service.core import RemovalUnsupportedError

    args = build_parser().parse_args(argv)
    handlers = {
        "list-policies": _cmd_list_policies,
        "simulate": _cmd_simulate,
        "experiment": _cmd_experiment,
        "analyze": _cmd_analyze,
        "compare": _cmd_compare,
        "mrc": _cmd_mrc,
        "resilience": _cmd_resilience,
        "perf": _cmd_perf,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "export-metrics": _cmd_export_metrics,
        "stats": _cmd_export_metrics,
        "walkthrough": _cmd_walkthrough,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except RemovalUnsupportedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
