"""Opt-in instrumentation wrapper for eviction policies.

:class:`InstrumentedPolicy` stands between a component (usually
:class:`~repro.service.core.CacheService`) and its policy, exactly
like the resilience sanitizer does, and publishes the policy's
internal dynamics into a :class:`~repro.obs.metrics.MetricsRegistry`:

* **queue depths** — for S3-FIFO-shaped policies (anything exposing
  ``small_used`` / ``main_used``), collect-time gauges for the S and M
  queues and the ghost queue G, so shard dashboards show the
  probationary/main split the paper's Fig. 11 sweeps statically;
* **ghost hit rate** — admissions that entered M directly because the
  key was remembered by G (``repro_policy_ghost_hits_total`` over
  ``repro_policy_admissions_total``), the live counterpart of the
  paper's "one ghost hit = one saved second-chance miss" argument;
* **demotion rate** — reuses the :class:`~repro.cache.base.DemotionEvent`
  stream that :mod:`repro.core.demotion` built for Fig. 10: counters
  for promoted vs. demoted probation exits;
* **evictions** — a counter plus a frequency-at-eviction histogram
  (buckets 0..freq_cap), the live Fig. 4.

The wrapper is opt-in and composes: wrap a raw policy, or wrap a
:class:`~repro.resilience.sanitizer.CheckedPolicy` to observe a
sanitized policy.  Per-request overhead is two dict-free counter
bumps plus, on misses, one membership probe; components that don't
ask for instrumentation pay nothing.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.obs.metrics import LabelDict, MetricsRegistry
from repro.sim.request import Request


class InstrumentedPolicy:
    """A transparent metrics-publishing proxy around an eviction policy.

    Delegates the full policy surface (``stats``, ``capacity``,
    ``remove``, listeners, introspection) to the wrapped instance, so
    it can stand in for the raw policy anywhere, the same contract as
    :class:`~repro.resilience.sanitizer.CheckedPolicy`.
    """

    def __init__(
        self,
        policy,
        registry: MetricsRegistry,
        labels: Optional[LabelDict] = None,
    ) -> None:
        self._policy = policy
        self._registry = registry
        labels = dict(labels or {})
        labels.setdefault("policy", policy.name)
        self._labels = labels

        # Hot-path counters (bumped in request()).
        self._admissions = registry.counter(
            "repro_policy_admissions",
            "Misses that admitted an object into the cache.",
            labels,
        )
        self._ghost_hits = registry.counter(
            "repro_policy_ghost_hits",
            "Admissions routed straight to the main queue by a ghost hit.",
            labels,
        )
        # Event-stream counters (fired by the policy's own listeners).
        self._evictions = registry.counter(
            "repro_policy_evictions",
            "Objects evicted by policy decision (deletes excluded).",
            labels,
        )
        freq_cap = int(getattr(policy, "_freq_cap", 3))
        self._evict_freq = registry.histogram(
            "repro_policy_eviction_freq",
            "Frequency counter value at eviction (the live Fig. 4).",
            labels,
            buckets=range(freq_cap + 1),
        )
        self._demotions = {
            outcome: registry.counter(
                "repro_policy_demotions",
                "Probationary-queue exits by outcome (the live Fig. 10 "
                "stream).",
                {**labels, "outcome": outcome},
            )
            for outcome in ("promoted", "demoted")
        }
        policy.add_eviction_listener(self._on_evict)
        policy.add_demotion_listener(self._on_demote)

        # Collect-time counters/gauges derived from policy state.
        stats = policy.stats
        registry.counter(
            "repro_policy_requests", "Requests the policy has processed.",
            labels,
        ).set_function(lambda: stats.requests)
        registry.counter(
            "repro_policy_hits", "Policy-level cache hits.", labels,
        ).set_function(lambda: stats.hits)
        registry.counter(
            "repro_policy_misses", "Policy-level cache misses.", labels,
        ).set_function(lambda: stats.misses)
        registry.gauge(
            "repro_policy_used", "Capacity units currently occupied.",
            labels,
        ).set_function(lambda: policy.used)
        registry.gauge(
            "repro_policy_objects", "Objects currently resident.", labels,
        ).set_function(lambda: len(policy))
        self._wire_queue_gauges()

    def _wire_queue_gauges(self) -> None:
        """Publish S/M/G depths for policies that expose them."""
        policy, registry, labels = self._policy, self._registry, self._labels
        if not hasattr(policy, "small_used"):
            return
        for name, attr in (
            ("repro_policy_small_used", "small_used"),
            ("repro_policy_main_used", "main_used"),
            ("repro_policy_small_capacity", "small_capacity"),
            ("repro_policy_main_capacity", "main_capacity"),
        ):
            registry.gauge(
                name, f"S3-FIFO queue metric ({attr}).", labels,
            ).set_function(
                lambda p=policy, a=attr: getattr(p, a)
            )
        if hasattr(policy, "ghost_len"):  # s3fifo-fast
            ghost_depth = lambda: policy.ghost_len  # noqa: E731
        elif hasattr(policy, "ghost"):  # reference s3fifo family
            ghost_depth = lambda: len(policy.ghost)  # noqa: E731
        else:
            return
        registry.gauge(
            "repro_policy_ghost_entries",
            "Keys currently remembered by the ghost queue G.",
            labels,
        ).set_function(ghost_depth)

    # ------------------------------------------------------------------
    # Listener callbacks
    # ------------------------------------------------------------------
    def _on_evict(self, event) -> None:
        self._evictions.inc()
        self._evict_freq.observe(event.freq)

    def _on_demote(self, event) -> None:
        outcome = "promoted" if event.promoted else "demoted"
        self._demotions[outcome].inc()

    # ------------------------------------------------------------------
    # Policy surface
    # ------------------------------------------------------------------
    @property
    def policy(self):
        return self._policy

    def request(self, req: Request) -> bool:
        hit = self._policy.request(req)
        if not hit:
            policy = self._policy
            if req.key in policy:
                self._admissions.inc()
                in_main = getattr(policy, "in_main", None)
                if in_main is not None and in_main(req.key):
                    # A brand-new admission landing in M means the ghost
                    # queue remembered the key (Algorithm 1's only route
                    # into M without passing through S).
                    self._ghost_hits.inc()
        return hit

    def access(self, key: Hashable, size: int = 1) -> bool:
        return self.request(Request(key, size=size))

    def __contains__(self, key: Hashable) -> bool:
        return key in self._policy

    def __len__(self) -> int:
        return len(self._policy)

    def __getattr__(self, name: str):
        return getattr(self._policy, name)

    def __repr__(self) -> str:
        return f"InstrumentedPolicy({self._policy!r})"
