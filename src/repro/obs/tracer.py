"""Sampling request tracer: a ring buffer of recent decisions.

Metrics aggregate; the tracer remembers *individuals*.  An
:class:`EventTracer` keeps the last N sampled requests with their
decision outcomes (hit / miss / expired / stored / rejected / ...), so
when a service misbehaves you can dump the recent history instead of
re-running the workload under a debugger.  Recording is O(1) into a
``deque(maxlen=...)`` and is sampled (1-in-``sample_every``), so it is
cheap enough to leave attached in loadgen runs.

Dumping
-------

* :meth:`EventTracer.dump` renders the buffer as JSON lines (or
  :meth:`EventTracer.events` for dicts).
* :func:`install_signal_dump` wires a signal (default ``SIGUSR1``) to
  dump a live tracer to a file or stderr — inspect a running
  ``serve`` / ``loadgen`` without stopping it.
* The CLI wraps replay loops with :func:`dump_on_error`, which prints
  the tail of the trace when the replay raises — the "flight recorder"
  read of the same buffer.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from typing import Any, Callable, Dict, Hashable, List, Optional

#: Decision outcomes recorded by the service layer (stable vocabulary,
#: see docs/OBSERVABILITY.md).
OUTCOMES = (
    "hit", "miss", "expired", "stored", "refreshed", "rejected",
    "deleted", "absent", "error",
)


class TraceEvent:
    """One sampled request and what the service decided about it."""

    __slots__ = ("seq", "op", "key", "outcome", "latency_us", "shard")

    def __init__(
        self,
        seq: int,
        op: str,
        key: Hashable,
        outcome: str,
        latency_us: Optional[float] = None,
        shard: Optional[int] = None,
    ) -> None:
        self.seq = seq
        self.op = op
        self.key = key
        self.outcome = outcome
        self.latency_us = latency_us
        self.shard = shard

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "seq": self.seq,
            "op": self.op,
            "key": repr(self.key),
            "outcome": self.outcome,
        }
        if self.latency_us is not None:
            out["latency_us"] = round(self.latency_us, 3)
        if self.shard is not None:
            out["shard"] = self.shard
        return out

    def __repr__(self) -> str:
        return (
            f"TraceEvent(#{self.seq} {self.op} {self.key!r} "
            f"-> {self.outcome})"
        )


class EventTracer:
    """Ring buffer of the most recent sampled :class:`TraceEvent`.

    ``capacity`` bounds memory; ``sample_every`` thins the stream
    (1 records everything, N records every Nth request).  ``record``
    is called by the service under its own lock, so the sequence
    counter and buffer need no lock of their own; attach one tracer
    per shard or accept benign interleaving across shards.
    """

    def __init__(self, capacity: int = 1024, sample_every: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.capacity = capacity
        self.sample_every = sample_every
        self.seen = 0
        self._buffer: "deque[TraceEvent]" = deque(maxlen=capacity)

    def record(
        self,
        op: str,
        key: Hashable,
        outcome: str,
        latency_us: Optional[float] = None,
        shard: Optional[int] = None,
    ) -> None:
        seq = self.seen
        self.seen = seq + 1
        if seq % self.sample_every:
            return
        self._buffer.append(
            TraceEvent(seq, op, key, outcome, latency_us, shard)
        )

    # ------------------------------------------------------------------
    # Reading the buffer
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    def events(self) -> List[Dict[str, Any]]:
        """The buffered events as dicts, oldest first."""
        return [event.as_dict() for event in self._buffer]

    def dump(self, stream=None) -> str:
        """The buffer as JSON lines; also written to ``stream`` if given."""
        text = "\n".join(json.dumps(e) for e in self.events())
        if text:
            text += "\n"
        if stream is not None:
            stream.write(text)
            stream.flush()
        return text

    def clear(self) -> None:
        self._buffer.clear()

    def __repr__(self) -> str:
        return (
            f"EventTracer(capacity={self.capacity}, "
            f"sample_every={self.sample_every}, seen={self.seen})"
        )


def dump_on_error(tracer: Optional[EventTracer], fn: Callable[[], Any],
                  stream=None):
    """Run ``fn``; on any exception, dump the tracer tail first.

    The flight-recorder pattern: the replay loop runs inside this
    wrapper, and a crash prints the recent decision history to
    ``stream`` (default stderr) before the traceback propagates.
    """
    try:
        return fn()
    except BaseException:
        if tracer is not None and len(tracer):
            out = stream if stream is not None else sys.stderr
            out.write(
                f"--- event tracer: last {len(tracer)} of "
                f"{tracer.seen} requests ---\n"
            )
            tracer.dump(out)
        raise


def install_signal_dump(
    tracer: EventTracer,
    signum: Optional[int] = None,
    path: Optional[str] = None,
) -> Callable[[], None]:
    """Dump ``tracer`` whenever ``signum`` (default SIGUSR1) arrives.

    Returns a zero-argument function that restores the previous
    handler.  On platforms without the signal (Windows), this is a
    no-op returning a no-op restorer.
    """
    import signal as _signal

    if signum is None:
        signum = getattr(_signal, "SIGUSR1", None)
        if signum is None:  # pragma: no cover - windows
            return lambda: None

    def _handler(_signo, _frame):
        if path is not None:
            with open(path, "a") as fh:
                tracer.dump(fh)
        else:
            tracer.dump(sys.stderr)

    previous = _signal.signal(signum, _handler)

    def restore() -> None:
        _signal.signal(signum, previous)

    return restore
