"""A dependency-free metrics registry: counters, gauges, histograms.

The paper's evaluation (Section 6.1, Fig. 8) and the follow-up work on
hit-ratio-vs-throughput trade-offs both stress that *miss ratio alone
is a misleading health signal* — throughput, latency, and queue
dynamics have to be observed together.  ``repro.obs`` is the substrate
for doing that against the live service layer: one
:class:`MetricsRegistry` is injected into any component that wants to
be observed, and the exporters (:mod:`repro.obs.exporters`) snapshot
it into JSON or Prometheus text format.

Concurrency discipline ("lock-cheap")
-------------------------------------

Hot-path updates (``Counter.inc``, ``Histogram.observe``) take **no
lock of their own**: components update metrics while already holding
their operation lock (every :class:`~repro.service.core.CacheService`
metric is touched under the service's per-shard lock), so adding a
metrics lock would only double the locking.  The registry's own lock
guards metric *creation* and :meth:`MetricsRegistry.collect`
snapshots, which are rare.

Collect-time values
-------------------

Counters and gauges can be backed by a callback
(:meth:`Counter.set_function` / :meth:`Gauge.set_function`) that is
evaluated at collect time instead of being written on the hot path.
This is how the service exports its existing
:class:`~repro.service.core.ServiceCounters` — zero additional work
per operation, perfectly consistent values at export.  Histograms
cannot be derived after the fact, so per-op latency observation is the
one genuinely new hot-path cost, and it only exists when a registry is
injected at all (the default is no registry, no overhead).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Default latency buckets, in microseconds.  Chosen to straddle the
#: service's measured per-op costs (single-digit us hit path, tail into
#: milliseconds under contention); the top bucket is +Inf implicitly.
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000,
)

LabelDict = Dict[str, str]


def _label_key(labels: Optional[LabelDict]) -> Tuple[Tuple[str, str], ...]:
    """Canonical, hashable identity of a label set."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common surface of one (name, labels) time series."""

    kind = "untyped"

    __slots__ = ("name", "help", "labels", "_fn")

    def __init__(self, name: str, help_text: str, labels: Optional[LabelDict]) -> None:
        self.name = name
        self.help = help_text
        self.labels: LabelDict = dict(labels or {})
        self._fn: Optional[Callable[[], float]] = None

    def set_function(self, fn: Callable[[], float]) -> "Metric":
        """Back this series with a collect-time callback (no hot-path cost)."""
        self._fn = fn
        return self

    def collect_value(self) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, {self.labels})"


class Counter(Metric):
    """A monotonically increasing count (exported with ``_total``)."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, help_text: str = "", labels: Optional[LabelDict] = None) -> None:
        super().__init__(name, help_text, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def collect_value(self) -> float:
        return self._fn() if self._fn is not None else self.value


class Gauge(Metric):
    """A value that can go up and down (occupancy, queue depth, ...)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self, name: str, help_text: str = "", labels: Optional[LabelDict] = None) -> None:
        super().__init__(name, help_text, labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def collect_value(self) -> float:
        return self._fn() if self._fn is not None else self.value


class Histogram(Metric):
    """Fixed-bucket histogram with cumulative Prometheus exposition.

    ``buckets`` are the finite upper bounds; ``+Inf`` is implicit.
    ``observe`` is two array writes plus a bisect — cheap enough for
    per-operation latency on the service hot path.
    """

    kind = "histogram"

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[LabelDict] = None,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_US,
    ) -> None:
        super().__init__(name, help_text, labels)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {bounds}")
        self.buckets: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def collect_value(self) -> float:
        return self.count


class MetricsRegistry:
    """Create-or-fetch factory and snapshot point for all metrics.

    Metric identity is ``(name, labels)``: asking for the same pair
    twice returns the same object (so the service and its exporter can
    both hold a handle), while two label sets under one name form a
    family that the Prometheus exporter renders under a single
    ``# TYPE`` header.  A name is permanently bound to its first kind;
    re-registering it as a different kind raises.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._helps: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def counter(self, name: str, help_text: str = "",
                labels: Optional[LabelDict] = None) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Optional[LabelDict] = None) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Optional[LabelDict] = None,
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_US) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def _get_or_create(self, cls, name: str, help_text: str,
                       labels: Optional[LabelDict], **kwargs) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, requested {cls.kind}"
                    )
                return metric
            bound_kind = self._kinds.get(name)
            if bound_kind is not None and bound_kind != cls.kind:
                raise ValueError(
                    f"metric family {name!r} is a {bound_kind}, "
                    f"cannot add a {cls.kind} series to it"
                )
            metric = cls(name, help_text, labels, **kwargs)
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
            if help_text or name not in self._helps:
                self._helps[name] = help_text
            return metric

    # ------------------------------------------------------------------
    # Introspection / snapshot
    # ------------------------------------------------------------------
    def families(self) -> List[Tuple[str, str, str, List[Metric]]]:
        """``(name, kind, help, series)`` tuples, name-sorted, stable.

        Series within a family are ordered by their label identity so
        two collects of an unchanged registry render identically.
        """
        with self._lock:
            metrics = list(self._metrics.items())
        grouped: Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], Metric]]] = {}
        for (name, lkey), metric in metrics:
            grouped.setdefault(name, []).append((lkey, metric))
        out = []
        for name in sorted(grouped):
            series = [m for _, m in sorted(grouped[name], key=lambda p: p[0])]
            out.append((name, self._kinds[name], self._helps.get(name, ""), series))
        return out

    def get(self, name: str, labels: Optional[LabelDict] = None) -> Optional[Metric]:
        """The registered series, or None (introspection and tests)."""
        return self._metrics.get((name, _label_key(labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry(namespace={self.namespace!r}, series={len(self)})"
