"""Render a :class:`~repro.obs.metrics.MetricsRegistry` snapshot.

Two formats, both dependency-free:

* :func:`to_prometheus` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP`` / ``# TYPE`` headers per family, one
  sample line per series, histograms as cumulative ``_bucket`` series
  plus ``_sum`` / ``_count``.  Counters get the ``_total`` suffix at
  export; registry names stay suffix-free.
* :func:`to_json` — a versioned JSON document
  (:data:`EXPORT_SCHEMA_VERSION`) with one object per series, suitable
  for ``BENCH_*.json``-style archival and diffing.

Both orderings are deterministic (families name-sorted, series
label-sorted), so exports of an unchanged registry are byte-identical
— the property the pinned-schema tests rely on.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List

from repro.obs.metrics import Histogram, Metric, MetricsRegistry

#: Bumped when the JSON export layout changes incompatibly.
EXPORT_SCHEMA_VERSION = 1

#: ``kind`` discriminator of the JSON export document.
EXPORT_KIND = "metrics-export"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{k}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    as_int = int(value)
    return str(as_int) if as_int == value else repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    lines: List[str] = []
    for name, kind, help_text, series in registry.families():
        exposed = f"{name}_total" if kind == "counter" else name
        if help_text:
            lines.append(f"# HELP {exposed} {help_text}")
        lines.append(f"# TYPE {exposed} {kind}")
        for metric in series:
            if isinstance(metric, Histogram):
                for bound, cumulative in metric.cumulative_buckets():
                    labelled = _format_labels(
                        metric.labels, f'le="{_format_bound(bound)}"'
                    )
                    lines.append(f"{exposed}_bucket{labelled} {cumulative}")
                base = _format_labels(metric.labels)
                lines.append(f"{exposed}_sum{base} {_format_value(metric.sum)}")
                lines.append(f"{exposed}_count{base} {metric.count}")
            else:
                labelled = _format_labels(metric.labels)
                value = _format_value(metric.collect_value())
                lines.append(f"{exposed}{labelled} {value}")
    return "\n".join(lines) + "\n" if lines else ""


def _series_dict(metric: Metric) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "name": metric.name,
        "type": metric.kind,
        "labels": dict(sorted(metric.labels.items())),
    }
    if isinstance(metric, Histogram):
        entry["buckets"] = [
            [_format_bound(bound), cumulative]
            for bound, cumulative in metric.cumulative_buckets()
        ]
        entry["sum"] = metric.sum
        entry["count"] = metric.count
    else:
        entry["value"] = metric.collect_value()
    return entry


def export_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """The JSON export as a Python dict (see :func:`to_json`)."""
    series: List[Dict[str, Any]] = []
    for name, kind, help_text, metrics in registry.families():
        for metric in metrics:
            entry = _series_dict(metric)
            if help_text:
                entry["help"] = help_text
            series.append(entry)
    return {
        "schema": EXPORT_SCHEMA_VERSION,
        "kind": EXPORT_KIND,
        "namespace": registry.namespace,
        "metrics": series,
    }


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The registry as a versioned, deterministic JSON document."""
    return json.dumps(export_dict(registry), indent=indent) + "\n"


def merge_export_dict(
    registry: MetricsRegistry,
    export: Dict[str, Any],
    extra_labels: Dict[str, str] = None,
) -> int:
    """Merge an :func:`export_dict` snapshot into ``registry``.

    The write half of cross-process metrics: a worker process snapshots
    its registry with :func:`export_dict` (callbacks resolved to plain
    values, so the result is picklable), ships it over a pipe, and the
    parent merges it here at collect time — this is how the
    multiprocess cache backend (:class:`~repro.service.mp.MPCacheService`)
    presents per-worker metrics as one registry.

    Series identity is ``(name, labels | extra_labels)``.  Counters and
    gauges are *overwritten* with the snapshot's value and histograms
    are reconstructed from their cumulative buckets, so merging a newer
    snapshot of the same worker replaces its series instead of
    double-counting.  Returns the number of series merged.
    """
    if export.get("kind") != EXPORT_KIND:
        raise ValueError(
            f"not a metrics export (kind={export.get('kind')!r})"
        )
    if export.get("schema") != EXPORT_SCHEMA_VERSION:
        raise ValueError(
            f"metrics export schema {export.get('schema')!r} != "
            f"{EXPORT_SCHEMA_VERSION}"
        )
    merged = 0
    for entry in export["metrics"]:
        labels = dict(entry["labels"])
        if extra_labels:
            labels.update(extra_labels)
        name = entry["name"]
        help_text = entry.get("help", "")
        kind = entry["type"]
        if kind == "counter":
            registry.counter(name, help_text, labels).value = entry["value"]
        elif kind == "gauge":
            registry.gauge(name, help_text, labels).set(entry["value"])
        elif kind == "histogram":
            bounds = [float(b) for b, _ in entry["buckets"][:-1]]
            histogram = registry.histogram(name, help_text, labels,
                                           buckets=bounds)
            if list(histogram.buckets) != bounds:
                raise ValueError(
                    f"histogram {name!r} already registered with "
                    f"different buckets"
                )
            cumulative = [c for _, c in entry["buckets"]]
            histogram.counts = [cumulative[0]] + [
                cumulative[i] - cumulative[i - 1]
                for i in range(1, len(cumulative))
            ]
            histogram.sum = entry["sum"]
            histogram.count = entry["count"]
        else:
            raise ValueError(f"unknown metric type {kind!r} in export")
        merged += 1
    return merged
