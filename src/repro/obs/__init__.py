"""Observability subsystem: metrics, tracing, and export.

Miss ratio alone is a misleading health signal (Section 6.1; Qiu et
al.'s hit-ratio-vs-throughput follow-up): ``repro.obs`` gives every
live component — the cache service, the policies behind it, the sweep
runner, the load generator — one dependency-free way to report
throughput, latency, occupancy, and queue dynamics together.

* :class:`MetricsRegistry` / :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — the lock-cheap metric substrate;
* :func:`to_prometheus` / :func:`to_json` — deterministic exporters;
* :class:`EventTracer` — sampling ring buffer of recent decisions;
* :class:`InstrumentedPolicy` — opt-in queue-depth / ghost / demotion
  instrumentation for any eviction policy.

See ``docs/OBSERVABILITY.md`` for the stable metric schema.
"""

from repro.obs.exporters import (
    EXPORT_KIND,
    EXPORT_SCHEMA_VERSION,
    export_dict,
    merge_export_dict,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.policy import InstrumentedPolicy
from repro.obs.tracer import (
    EventTracer,
    TraceEvent,
    dump_on_error,
    install_signal_dump,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_US",
    "to_prometheus",
    "to_json",
    "export_dict",
    "merge_export_dict",
    "EXPORT_SCHEMA_VERSION",
    "EXPORT_KIND",
    "EventTracer",
    "TraceEvent",
    "dump_on_error",
    "install_signal_dump",
    "InstrumentedPolicy",
]
