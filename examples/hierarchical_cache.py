#!/usr/bin/env python3
"""Multi-level hierarchy scenario: DRAM L1 over a large L2.

Section 7 situates quick demotion among hierarchical-cache techniques
(exclusive caching, victim caches, demotion-based placement).  This
example builds a two-level exclusive hierarchy, compares L1 policies,
and shows the demotion-traffic metric that matters when L2 is flash.

Run:  python examples/hierarchical_cache.py
"""

from repro.cache.fifo import FifoCache
from repro.cache.lru import LruCache
from repro.core.s3fifo import S3FifoCache
from repro.hierarchy.multilevel import MultiLevelCache
from repro.traces.datasets import generate_dataset_trace


def build(l1_factory, l1_size, l2_size, mode):
    return MultiLevelCache(
        [l1_factory(l1_size), FifoCache(l2_size)], mode=mode
    )


def main() -> None:
    trace = generate_dataset_trace("cloudphysics", 1, scale=1.0, seed=4)
    footprint = len(set(trace))
    l1_size = max(10, footprint // 50)   # small, fast tier
    l2_size = max(20, footprint // 5)    # big, slow tier (e.g. flash)
    print(f"trace: {len(trace):,} requests, {footprint:,} objects; "
          f"L1={l1_size}, L2={l2_size}\n")

    print("--- exclusive hierarchy (victim-cache chain), L1 policy sweep ---")
    for label, factory in [
        ("lru", LruCache),
        ("fifo", FifoCache),
        ("s3fifo", S3FifoCache),
    ]:
        h = build(factory, l1_size, l2_size, "exclusive")
        result = h.run(list(trace))
        print(f"  L1={label:7s} overall miss={result.miss_ratio:.4f}  "
              f"L1 hits={result.hit_ratio_at(0):.1%}  "
              f"L2 hits={result.hit_ratio_at(1):.1%}  "
              f"demotions={result.demotions}")
    print("  (S3-FIFO's quick demotion filters one-hit wonders out of\n"
          "   the demotion stream — fewer L2 writes at equal or better\n"
          "   hierarchy miss ratio)\n")

    print("--- exclusive vs inclusive at the same total capacity ---")
    for mode in ("exclusive", "inclusive"):
        h = build(S3FifoCache, l1_size, l2_size, mode)
        result = h.run(list(trace))
        print(f"  {mode:10s} miss={result.miss_ratio:.4f} "
              f"(L1 {result.hit_ratio_at(0):.1%}, "
              f"L2 {result.hit_ratio_at(1):.1%})")
    print("  (exclusive pools the two tiers' capacity; inclusive wastes\n"
          "   L2 space on duplicates — why second-level caches want\n"
          "   exclusive placement, Section 7's multi-level context)")


if __name__ == "__main__":
    main()
