#!/usr/bin/env python3
"""Miss-ratio curves: exact Mattson profiling and SHARDS mini-simulation.

Section 6.2.3 of the paper recommends downsized simulations with
spatial sampling for operators who need to pick per-workload
parameters.  This example builds the exact LRU miss-ratio curve for a
workload, reproduces it from a 15% spatial sample at a fraction of the
cost, and then uses the same miniature-simulation machinery to choose
S3-FIFO's small-queue size.

Run:  python examples/miss_ratio_curves.py
"""

import time

from repro.cache.registry import create_policy
from repro.sim.mrc import fifo_mrc, lru_mrc, mrc_error, sampled_mrc
from repro.sim.simulator import simulate
from repro.traces.compiled import compile_trace
from repro.traces.synthetic import zipf_trace


def ascii_curve(label, curve):
    print(f"  {label}")
    for size, mr in zip(curve.sizes, curve.miss_ratios):
        print(f"    size {size:>6d}  miss {mr:.3f}  {'#' * int(mr * 40)}")


def main() -> None:
    trace = zipf_trace(num_objects=20_000, num_requests=150_000, alpha=0.9,
                       seed=0)
    sizes = [250, 1000, 4000, 16000]
    print(f"workload: {len(trace):,} requests, {len(set(trace)):,} objects\n")

    print("--- exact LRU MRC (Mattson, one pass) ---")
    t0 = time.time()
    exact = lru_mrc(trace, sizes=sizes)
    exact_time = time.time() - t0
    ascii_curve(f"computed in {exact_time:.2f}s", exact)

    print("\n--- exact FIFO MRC (single-pass multi-size, one pass) ---")
    ct = compile_trace(trace)
    t0 = time.time()
    fifo_curve = fifo_mrc(ct, sizes=sizes)
    single_time = time.time() - t0
    t0 = time.time()
    for size in sizes:
        simulate(create_policy("fifo-fast", capacity=size), ct)
    per_size_time = time.time() - t0
    ascii_curve(
        f"computed in {single_time:.2f}s "
        f"(per-size re-simulation: {per_size_time:.2f}s, "
        f"{per_size_time / single_time:.1f}x slower)",
        fifo_curve,
    )

    print("\n--- SHARDS mini-simulation (15% sample, 3 ensembles) ---")
    t0 = time.time()
    estimate = sampled_mrc("lru", trace, sizes=sizes, rate=0.15, seed=0,
                           ensembles=3)
    sample_time = time.time() - t0
    ascii_curve(f"computed in {sample_time:.2f}s", estimate)
    print(f"  mean absolute error vs exact: {mrc_error(estimate, exact):.3f}")

    print("\n--- parameter search by miniature simulation ---")
    print("  choosing S3-FIFO's small-queue size at cache=4000:")
    for ratio in (0.01, 0.05, 0.1, 0.2, 0.4):
        curve = sampled_mrc("s3fifo", trace, sizes=[4000], rate=0.15,
                            ensembles=2, small_ratio=ratio)
        print(f"    S = {ratio:4.0%}   est. miss ratio = "
              f"{curve.miss_ratios[0]:.3f}")
    print("  (flat across 1%-20%, worse at 40% — Fig. 11's shape, found\n"
          "   without ever simulating the full trace)")


if __name__ == "__main__":
    main()
