#!/usr/bin/env python3
"""Quickstart: simulate S3-FIFO against classic policies on a Zipf
workload and print the miss ratios.

Run:  python examples/quickstart.py
"""

from repro import S3FifoCache, create_policy, simulate, zipf_trace


def main() -> None:
    # A skewed key-value workload: 10k objects, 200k requests.
    trace = zipf_trace(num_objects=10_000, num_requests=200_000, alpha=1.0,
                       seed=42)
    cache_size = 1_000  # 10% of the object population

    print(f"workload: Zipf(1.0), {len(trace):,} requests, "
          f"{len(set(trace)):,} objects, cache = {cache_size:,} objects\n")

    # The direct API: construct, feed requests, read stats.
    cache = S3FifoCache(capacity=cache_size)
    result = simulate(cache, trace)
    print(f"S3-FIFO        miss ratio = {result.miss_ratio:.4f} "
          f"(S={cache.small_capacity}, M={cache.main_capacity}, "
          f"ghost={cache.ghost.capacity} entries)")

    # The registry API: everything else by name.
    for name in ["fifo", "lru", "clock", "arc", "tinylfu", "lirs", "sieve"]:
        policy = create_policy(name, capacity=cache_size)
        mr = simulate(policy, trace).miss_ratio
        delta = (result.miss_ratio - mr) / mr if mr else 0.0
        print(f"{name:12s}   miss ratio = {mr:.4f}   "
              f"(S3-FIFO is {-delta:+.1%} vs this)")

    # Per-object introspection.
    hot_key = trace[0]
    print(f"\nkey {hot_key} resident: {hot_key in cache}, "
          f"in small queue: {cache.in_small(hot_key)}, "
          f"in main queue: {cache.in_main(hot_key)}")


if __name__ == "__main__":
    main()
