#!/usr/bin/env python3
"""Throughput scaling: the Fig. 8 experiment via the concurrency model.

Prints modeled throughput-vs-threads curves for the six policies of
Fig. 8 at the paper's two operating points, validates the analytic
model against the discrete-event simulation, and (optionally)
demonstrates why real Python threads cannot reproduce this natively
(the GIL).

Run:  python examples/throughput_scaling.py
"""

from repro.concurrency.costs import PROFILES, profile_for
from repro.concurrency.model import (
    analytic_throughput,
    simulate_throughput,
    throughput_curve,
)

THREADS = [1, 2, 4, 8, 16]


def print_curves(miss_ratio: float, label: str) -> None:
    print(f"--- {label} cache (miss ratio {miss_ratio}) ---")
    header = "policy".ljust(15) + "".join(f"{n:>9d}t" for n in THREADS)
    print(header)
    for name in ["lru-strict", "lru-optimized", "tinylfu", "twoq",
                 "segcache", "s3fifo"]:
        curve = throughput_curve(profile_for(name), THREADS, miss_ratio)
        cells = "".join(f"{p.mqps:9.1f}" for p in curve)
        print(f"{name:15s}{cells}   MQPS")
    s3 = analytic_throughput(profile_for("s3fifo"), 16, miss_ratio)
    lru = analytic_throughput(profile_for("lru-optimized"), 16, miss_ratio)
    print(f"S3-FIFO vs optimized LRU at 16 threads: {s3 / lru:.1f}x "
          f"(paper: >6x)\n")


def validate_models() -> None:
    print("--- analytic vs discrete-event simulation ---")
    for name in ["lru-optimized", "s3fifo"]:
        profile = profile_for(name)
        for threads in (1, 8):
            ana = analytic_throughput(profile, threads, 0.02)
            sim = simulate_throughput(profile, threads, 0.02,
                                      requests=100_000, seed=0)
            print(f"  {name:15s} {threads:2d} threads: "
                  f"analytic {ana:7.1f} MQPS, DES {sim:7.1f} MQPS")
    print()


def gil_demo() -> None:
    print("--- why not real threads? (the GIL demonstration) ---")
    from repro.concurrency.threads import gil_bound_throughput
    from repro.traces.synthetic import zipf_trace

    trace = zipf_trace(1000, 10_000, seed=0)
    stats = gil_bound_throughput("s3fifo", 100, trace, threads=4,
                                 duration=0.3)
    print(f"  1 thread : {stats['single_thread_ops']:,.0f} ops/s")
    print(f"  4 threads: {stats['multi_thread_ops']:,.0f} ops/s "
          f"(efficiency {stats['scaling_efficiency']:.0%})")
    print("  CPython threads serialize on the GIL, so the paper's Fig. 8\n"
          "  is reproduced with the calibrated cost model above instead.")


if __name__ == "__main__":
    print_curves(0.02, "large")
    print_curves(0.21, "small")
    validate_models()
    gil_demo()
