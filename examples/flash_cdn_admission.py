#!/usr/bin/env python3
"""Flash CDN scenario: DRAM admission filters for a flash cache.

CDN caches store objects on flash, whose write endurance is limited.
This example reproduces the Section 5.4 / Fig. 9 comparison on a
WikiMedia-like sized trace: no admission, probabilistic admission,
Flashield-style ML admission, and the paper's S3-FIFO small-queue
filter — measuring both byte miss ratio and flash write bytes.

Run:  python examples/flash_cdn_admission.py
"""

from repro.flash.admission import (
    FlashieldAdmission,
    NoAdmission,
    ProbabilisticAdmission,
    S3FifoAdmission,
)
from repro.flash.flashcache import HybridFlashCache
from repro.traces.datasets import sized_dataset_trace


def run_scheme(label, trace, unique_bytes, flash, dram, admission, dram_policy):
    cache = HybridFlashCache(dram, flash, admission, dram_policy=dram_policy)
    result = cache.run(list(trace))
    print(f"  {label:28s} byte-miss={result.byte_miss_ratio:.3f}   "
          f"flash-writes={result.normalized_writes(unique_bytes):.2f}x "
          f"of unique bytes")
    return result


def main() -> None:
    trace = sized_dataset_trace("wikimedia", 0, scale=0.6, seed=5)
    sizes = {k: s for k, s in trace}
    unique_bytes = sum(sizes.values())
    flash = unique_bytes // 10  # flash cache = 10% of footprint bytes
    print(f"WikiMedia-like CDN trace: {len(trace):,} requests, "
          f"{len(sizes):,} objects, {unique_bytes/1e9:.2f} GB footprint, "
          f"flash = {flash/1e9:.2f} GB\n")

    mean_size = max(1, unique_bytes // len(sizes))

    print("--- write-everything baseline ---")
    run_scheme("fifo (no admission)", trace, unique_bytes, flash,
               flash // 100, NoAdmission(), "lru")

    print("--- probabilistic admission (20%) ---")
    run_scheme("probabilistic-0.2", trace, unique_bytes, flash,
               flash // 100, ProbabilisticAdmission(0.2, seed=0), "lru")

    print("--- ML admission (Flashield-like) vs DRAM size ---")
    for ratio in (0.001, 0.01, 0.1):
        dram = max(1, int(flash * ratio))
        run_scheme(f"flashield (dram={ratio:.1%})", trace, unique_bytes,
                   flash, dram, FlashieldAdmission(seed=0), "lru")

    print("--- the paper's small-FIFO-queue filter vs DRAM size ---")
    for ratio in (0.001, 0.01, 0.1):
        dram = max(1, int(flash * ratio))
        ghost = max(64, (dram // mean_size) * 8)
        run_scheme(f"s3fifo filter (dram={ratio:.1%})", trace, unique_bytes,
                   flash, dram, S3FifoAdmission(ghost_entries=ghost), "fifo")

    print("\nTakeaway (Fig. 9): the FIFO filter cuts flash writes AND miss\n"
          "ratio, and keeps working even when DRAM is 0.1% of the flash\n"
          "size — where the ML admission has no signal to learn from.")


if __name__ == "__main__":
    main()
