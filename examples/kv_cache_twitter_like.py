#!/usr/bin/env python3
"""Key-value cache scenario: a Twitter-like workload with object churn.

In-memory KV caches (the paper's Twitter and Social Network datasets)
see highly skewed popularity *and* a constant stream of newly created
objects.  This example sweeps the small-queue size (the Fig. 11 / Table
2 experiment) and demonstrates the adaptive S3-FIFO-D variant.

Run:  python examples/kv_cache_twitter_like.py
"""

from repro import create_policy, simulate
from repro.core.s3fifo import S3FifoCache
from repro.core.s3fifo_d import S3FifoDCache
from repro.traces.datasets import generate_dataset_trace


def main() -> None:
    trace = generate_dataset_trace("twitter", 0, scale=1.5, seed=3)
    footprint = len(set(trace))
    cache_size = max(10, footprint // 10)
    print(f"Twitter-like trace: {len(trace):,} requests, "
          f"{footprint:,} objects, cache = {cache_size:,}\n")

    print("--- baselines ---")
    for name in ["lru", "arc", "tinylfu", "s3fifo"]:
        mr = simulate(create_policy(name, capacity=cache_size),
                      list(trace)).miss_ratio
        print(f"  {name:8s} miss ratio = {mr:.4f}")

    print("\n--- small-queue size sweep (Table 2) ---")
    for ratio in [0.01, 0.05, 0.10, 0.20, 0.40]:
        cache = S3FifoCache(cache_size, small_ratio=ratio)
        mr = simulate(cache, list(trace)).miss_ratio
        print(f"  S = {ratio:4.0%} of cache   miss ratio = {mr:.4f}")
    print("  (flat between 5% and 20% -> the static 10% default is safe)")

    print("\n--- adaptive queue sizing (S3-FIFO-D, Sec. 6.2.2) ---")
    static = simulate(S3FifoCache(cache_size), list(trace))
    adaptive_cache = S3FifoDCache(cache_size)
    adaptive = simulate(adaptive_cache, list(trace))
    print(f"  s3fifo    miss ratio = {static.miss_ratio:.4f}")
    print(f"  s3fifo-d  miss ratio = {adaptive.miss_ratio:.4f} "
          f"({adaptive_cache.resizes} queue resizes, final "
          f"S = {adaptive_cache.small_capacity}/{cache_size})")
    print("  (on normal workloads the static queue is already right;\n"
          "   adaptation only pays on adversarial patterns)")


if __name__ == "__main__":
    main()
