#!/usr/bin/env python3
"""Block-cache scenario: scan resistance on an MSR-like workload.

Block storage traces (the paper's MSR, CloudPhysics, Tencent CBS
datasets) mix skewed hot traffic with sequential scans.  A scan's
blocks are one-hit wonders: policies without quick demotion let them
flush the hot set.  This example shows how the small FIFO queue
protects the main cache, and inspects the frequency of evicted objects
(the Fig. 4 analysis).

Run:  python examples/block_cache_scan_resistance.py
"""

from repro import create_policy, simulate
from repro.traces.analysis import annotate_next_access, frequency_at_eviction
from repro.traces.datasets import generate_dataset_trace
from repro.traces.synthetic import zipf_with_scans


def scan_study() -> None:
    print("=== scan resistance (synthetic Zipf + periodic scans) ===")
    trace = zipf_with_scans(
        num_objects=5_000,
        num_requests=100_000,
        alpha=0.9,
        scan_length=1_000,
        scan_every=10_000,
        seed=7,
    )
    cache_size = 500
    for name in ["lru", "fifo", "clock", "arc", "s3fifo"]:
        mr = simulate(
            create_policy(name, capacity=cache_size), list(trace)
        ).miss_ratio
        print(f"  {name:8s} miss ratio = {mr:.4f}")
    print("  (LRU lets each scan flush the hot set; S3-FIFO's small\n"
          "   queue absorbs the scan blocks and evicts them quickly)\n")


def eviction_frequency_study() -> None:
    print("=== frequency of objects at eviction (MSR-like, Fig. 4) ===")
    trace = generate_dataset_trace("msr", 0, seed=1)
    annotated = annotate_next_access(trace)
    cache_size = max(10, len(set(trace)) // 10)
    for name in ["lru", "belady", "s3fifo"]:
        policy = create_policy(name, capacity=cache_size)
        histogram = frequency_at_eviction(policy, annotated)
        total = sum(histogram.values())
        zero = histogram.get(0, 0) / total if total else 0.0
        print(f"  {name:8s} evictions={total:6d}  "
              f"never-reused-at-eviction={zero:.1%}")
    print("  (most evicted blocks were one-hit wonders -> evicting\n"
          "   them early is nearly free, the paper's Section 3 insight)")


if __name__ == "__main__":
    scan_study()
    eviction_frequency_study()
