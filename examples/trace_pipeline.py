#!/usr/bin/env python3
"""End-to-end trace pipeline: generate -> persist -> analyze -> sweep.

Shows the workflow a user with their own traces would follow: write a
trace to disk (binary format), stream it back, characterize the
workload, and run a fault-tolerant policy sweep over it.

Run:  python examples/trace_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.sim.metrics import miss_ratio_reduction
from repro.sim.runner import SweepJob, run_sweep
from repro.traces.datasets import generate_dataset_trace
from repro.traces.readers import read_binary_trace, write_binary_trace
from repro.traces.stats import summarize


def load_trace_keys(path):
    """Top-level loader so the sweep runner can pickle it."""
    return [req.key for req in read_binary_trace(path)]


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="s3fifo-repro-"))
    trace_path = workdir / "cloudphysics-like.bin"

    # 1. Generate and persist a block-cache trace.
    trace = generate_dataset_trace("cloudphysics", 0, scale=1.0, seed=9)
    count = write_binary_trace(trace_path, trace)
    print(f"wrote {count:,} requests to {trace_path} "
          f"({trace_path.stat().st_size / 1024:.0f} KiB)\n")

    # 2. Characterize the workload from the file.
    keys = load_trace_keys(trace_path)
    summary = summarize(keys)
    print("workload summary:")
    for field in ("requests", "objects", "requests_per_object",
                  "one_hit_wonder_ratio", "zipf_alpha"):
        print(f"  {field:22s} {summary[field]:.3f}")

    # 3. Sweep policies over the persisted trace.
    cache_size = max(10, int(summary["objects"] * 0.1))
    policies = ["fifo", "lru", "clock", "arc", "tinylfu", "lirs", "s3fifo"]
    jobs = [
        SweepJob(
            trace_name="cloudphysics-like",
            trace_factory=load_trace_keys,
            trace_kwargs={"path": trace_path},
            policy=policy,
            cache_size=cache_size,
        )
        for policy in policies
    ]
    results = {r.policy: r for r in run_sweep(jobs, processes=1)}

    # 4. Report reductions vs FIFO, the paper's Fig. 6 metric.
    fifo_mr = results["fifo"].miss_ratio
    print(f"\ncache = {cache_size} objects; reductions vs FIFO "
          f"(miss ratio {fifo_mr:.4f}):")
    ranked = sorted(
        results.values(),
        key=lambda r: miss_ratio_reduction(fifo_mr, r.miss_ratio),
        reverse=True,
    )
    for result in ranked:
        reduction = miss_ratio_reduction(fifo_mr, result.miss_ratio)
        print(f"  {result.policy:8s} miss {result.miss_ratio:.4f} "
              f"({reduction:+.1%})")


if __name__ == "__main__":
    main()
