"""Bench: Section 7 extension — SIEVE as S3-FIFO's main queue.

Paper: "Sieve can be used to replace the large FIFO queue in S3-FIFO
to further improve efficiency."  This benchmark compares plain S3-FIFO
against the S3-SIEVE extension (and standalone SIEVE) across the
dataset stand-ins.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments.common import format_rows
from repro.sim.metrics import mean, miss_ratio_reduction
from repro.sim.runner import run_sweep
from repro.traces.datasets import make_dataset_jobs


def _run():
    jobs = make_dataset_jobs(
        ["fifo", "s3fifo", "s3sieve", "sieve"],
        0.1,
        scale=BENCH_SCALE,
        traces_per_dataset=1,
    )
    results = [r for r in run_sweep(jobs, processes=1) if r.ok]
    fifo = {r.trace_name: r.miss_ratio for r in results if r.policy == "fifo"}
    rows = []
    for policy in ("s3fifo", "s3sieve", "sieve"):
        reductions = [
            miss_ratio_reduction(fifo[r.trace_name], r.miss_ratio)
            for r in results
            if r.policy == policy and r.trace_name in fifo
        ]
        wins_vs_s3 = None
        if policy == "s3sieve":
            s3 = {
                r.trace_name: r.miss_ratio
                for r in results
                if r.policy == "s3fifo"
            }
            wins_vs_s3 = sum(
                1
                for r in results
                if r.policy == "s3sieve"
                and r.miss_ratio <= s3.get(r.trace_name, 1.0) + 1e-12
            )
        rows.append(
            {
                "policy": policy,
                "mean_reduction": mean(reductions),
                "min_reduction": min(reductions),
                "traces": len(reductions),
                "ties_or_wins_vs_s3fifo": wins_vs_s3 if wins_vs_s3 is not None else "",
            }
        )
    return rows


def test_sec7_sieve_extension(benchmark, save_table):
    rows = run_once(benchmark, _run)
    table = format_rows(
        rows,
        columns=[
            "policy",
            "mean_reduction",
            "min_reduction",
            "traces",
            "ties_or_wins_vs_s3fifo",
        ],
        title="Sec. 7 — SIEVE main-queue extension",
        float_fmt="{:+.3f}",
    )
    save_table("sec7_sieve_extension", table)
    print("\n" + table)
    means = {r["policy"]: r["mean_reduction"] for r in rows}
    # The extension matches or improves on plain S3-FIFO on average.
    assert means["s3sieve"] >= means["s3fifo"] - 0.01
    # Standalone SIEVE (no small queue / ghost) trails on these mixed
    # workloads — quick demotion still needs the probationary queue.
    assert means["s3sieve"] >= means["sieve"] - 0.01
