"""Bench: regenerate Table 2 (miss ratio vs small-queue size).

Paper: S3-FIFO's miss ratio is U-shaped and smooth in the S size;
TinyLFU shows anomalies (cliffs) at some window sizes.
"""

from conftest import run_once

from repro.experiments import fig10_demotion


def test_table2_queue_size(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: fig10_demotion.run(
            s_sizes=(0.4, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01), scale=0.4
        ),
    )
    pivot = fig10_demotion.table2_view(rows)
    from repro.experiments.common import format_rows

    columns = ["dataset", "cache", "policy"] + sorted(
        {c for r in pivot for c in r if c.startswith("s=")}
    )
    table = format_rows(pivot, columns=columns,
                        title="Table 2 — miss ratio vs S size")
    save_table("table2_queue_size", table)
    print("\n" + table)

    for dataset in ("twitter", "msr"):
        for cache in ("large", "small"):
            s3 = {
                r["s_size"]: r["miss_ratio"]
                for r in rows
                if r["dataset"] == dataset and r["cache"] == cache
                and r["policy"] == "s3fifo" and r["s_size"] is not None
            }
            lru = next(
                r["miss_ratio"] for r in rows
                if r["dataset"] == dataset and r["cache"] == cache
                and r["policy"] == "lru"
            )
            # The default 10% S beats LRU (Table 2's comparison row).
            assert s3[0.1] < lru, (dataset, cache)
            # Smoothness: neighbouring S sizes move the miss ratio
            # only gently in the 5%-20% plateau the paper reports.
            assert abs(s3[0.05] - s3[0.2]) < 0.05, (dataset, cache)
