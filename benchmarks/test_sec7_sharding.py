"""Bench: Section 7 — why sharding is not the scalability answer.

Paper: "cache workloads often follow Zipfian popularity, so sharding
leads to load imbalance and limits the whole system's throughput."
The sharding model quantifies the claim: the hottest shard saturates
first, capping system throughput well below the n-core ideal, while a
lock-free shared cache (S3-FIFO's cost profile) keeps scaling.
"""

from conftest import run_once

from repro.concurrency.costs import profile_for
from repro.concurrency.model import analytic_throughput
from repro.concurrency.sharding import (
    imbalance_factor,
    shard_load_shares,
    sharding_scaling_curve,
)


def test_sec7_sharding_imbalance(benchmark, save_table):
    def build():
        threads = [1, 2, 4, 8, 16]
        curves = {
            alpha: sharding_scaling_curve(
                threads, num_objects=200_000, alpha=alpha, per_core_mqps=5.0
            )
            for alpha in (0.0, 1.0, 1.3)
        }
        imbalance = {
            alpha: imbalance_factor(
                shard_load_shares(200_000, 16, alpha, seed=0)
            )
            for alpha in (0.0, 1.0, 1.3)
        }
        s3_16 = analytic_throughput(profile_for("s3fifo"), 16, 0.02)
        return curves, imbalance, s3_16

    curves, imbalance, s3_16 = run_once(benchmark, build)
    lines = ["Sec. 7 — sharded throughput vs Zipf skew (MQPS)"]
    for alpha, curve in curves.items():
        series = "  ".join(f"{n}t:{v:6.1f}" for n, v in curve.items())
        lines.append(
            f"  alpha={alpha:<4}  {series}   "
            f"(16-shard imbalance {imbalance[alpha]:.2f}x)"
        )
    lines.append(f"  s3fifo shared cache @16 threads: {s3_16:.1f} MQPS")
    table = "\n".join(lines)
    save_table("sec7_sharding", table)
    print("\n" + table)

    # Uniform load shards perfectly; Zipf does not.
    assert curves[0.0][16] / curves[0.0][1] > 15
    assert curves[1.3][16] / curves[1.3][1] < 12
    assert imbalance[1.3] > imbalance[0.0]
    # At high skew, the lock-free shared cache out-scales sharding.
    assert s3_16 > curves[1.3][16]
