"""Bench: throughput-vs-hit-ratio frontier per backend/transport.

Regenerates the frontier sweep (``repro.experiments.frontier``): the
same seeded Zipf trace replayed at several cache sizes for the thread
backend and for mp over pipe and shm.  The assertions are shape
claims, not speed claims — hit ratios must rise with capacity within a
series, and the two mp transports must agree exactly on the hit-ratio
axis (the transport may only move throughput).
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments.frontier import (
    DEFAULT_RATIOS,
    DEFAULT_SERIES,
    format_chart,
    format_table,
    run,
)


def test_frontier(benchmark, save_table):
    def build():
        return run(scale=BENCH_SCALE, seed=42)

    rows = run_once(benchmark, build)
    table = format_table(rows) + "\n\n" + format_chart(rows)
    save_table("frontier", table)
    print("\n" + table)

    assert len(rows) == len(DEFAULT_SERIES) * len(DEFAULT_RATIOS)
    assert all(r["kops"] > 0 for r in rows)
    by_series = {}
    for r in rows:
        by_series.setdefault(r["series"], []).append(r)
    for series_rows in by_series.values():
        ratios = [r["hit_ratio"] for r in series_rows]
        # Bigger cache, same trace: the frontier walks right.
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0]
    # The transport cannot move a point's hit ratio: same trace, same
    # sharding, same eviction decisions — pipe and shm pin exactly.
    pipe = {r["cache_ratio"]: r["hit_ratio"] for r in by_series["mp pipe"]}
    shm = {r["cache_ratio"]: r["hit_ratio"] for r in by_series["mp shm"]}
    assert pipe == shm
