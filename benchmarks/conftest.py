"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure via the matching
``repro.experiments`` module, runs it once under pytest-benchmark's
timer (``rounds=1`` — these are experiments, not microbenchmarks), and
saves the formatted rows to ``benchmarks/results/<name>.txt`` so the
numbers behind EXPERIMENTS.md can be re-inspected.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Single knob to shrink/grow every experiment-backed benchmark.
BENCH_SCALE = 0.25
BENCH_TRACES_PER_DATASET = 2


@pytest.fixture(scope="session")
def save_table():
    """Persist a formatted experiment table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
