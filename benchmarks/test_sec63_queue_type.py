"""Bench: Section 6.3 — the LRU-vs-FIFO queue-type ablation.

Paper: "LRU queues do not improve efficiency ... with quick demotion,
the queue type does not matter."
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import sec63_queue_type


def test_sec63_queue_type(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: sec63_queue_type.run(
            scale=BENCH_SCALE,
            traces_per_dataset=1,
            processes=1,
        ),
    )
    table = sec63_queue_type.format_table(rows)
    save_table("sec63_queue_type", table)
    print("\n" + table)
    assert len(rows) == 5
    means = {r["variant"]: r["mean_reduction"] for r in rows}
    # Everything beats FIFO.
    assert all(v > 0 for v in means.values())
    # The paper's claim: queue type barely moves the needle.
    assert max(means.values()) - min(means.values()) < 0.06
    # LRU queues give no meaningful edge over the all-FIFO design.
    assert means["S3(S=fifo,M=fifo)"] >= means["S3(S=lru,M=lru)"] - 0.02
