"""Bench: regenerate Table 1 (dataset inventory + one-hit-wonder cols)."""

from conftest import BENCH_SCALE, BENCH_TRACES_PER_DATASET, run_once

from repro.experiments import table1_datasets
from repro.traces.datasets import DATASETS


def test_table1_datasets(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: table1_datasets.run(
            scale=BENCH_SCALE,
            traces_per_dataset=BENCH_TRACES_PER_DATASET,
            num_samples=4,
        ),
    )
    table = table1_datasets.format_table(rows)
    save_table("table1_datasets", table)
    print("\n" + table)
    assert len(rows) == len(DATASETS) == 14
    for row in rows:
        # Full-trace ratio calibrated to the paper's column.
        assert abs(row["ohw_full"] - row["paper_ohw_full"]) < 0.15, row
        # Subsequence ratios rise as sequences shrink (Table 1 columns).
        assert row["ohw_10pct"] >= row["ohw_full"] - 0.05, row
