"""Bench: regenerate Fig. 11 (reduction percentiles vs small-queue size).

Paper: smaller S gives the biggest wins at the top percentiles but
hurts the tail; 5%-20% is a flat, safe plateau.
"""

from conftest import BENCH_SCALE, BENCH_TRACES_PER_DATASET, run_once

from repro.experiments import fig11_s_size_sweep


def test_fig11_s_size_sweep(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: fig11_s_size_sweep.run(
            scale=BENCH_SCALE,
            traces_per_dataset=BENCH_TRACES_PER_DATASET,
            processes=1,
        ),
    )
    table = fig11_s_size_sweep.format_table(rows)
    save_table("fig11_s_size_sweep", table)
    print("\n" + table)
    for cache in ("large", "small"):
        by_size = {
            r["s_size"]: r for r in rows if r["cache"] == cache
        }
        # All sweep points improve on FIFO on average.
        assert all(r["mean"] > 0 for r in by_size.values()), cache
        # The 5%-20% plateau: means within a couple of points.
        plateau = [by_size[s]["mean"] for s in (0.05, 0.1, 0.2)]
        assert max(plateau) - min(plateau) < 0.05, cache
