"""Perf guard for the network front-end over the mp+shm backend.

Marked ``perf`` and excluded from tier-1 (see pyproject addopts); run
via ``pytest benchmarks/perf -m perf``.  Replays the recorded
pipelined RESP-over-mp+shm socket row from
``benchmarks/results/BENCH_service.json`` (regenerate with ``make
loadgen``) live and enforces a regression floor: the socket path must
still reach ``THROUGHPUT_FLOOR`` of the recorded throughput.  This is
the full stack the PR adds — event loop parsing RESP, GET-run fusion
into ``get_many``, shm rings to worker processes — so a regression in
any layer (parser, pipeliner, transport) trips it.

The floor is deliberately a fraction rather than 1.0: socket
throughput is the noisiest number this repo records (scheduler,
loopback stack, and CPU-frequency state all move it), and the guard
exists to catch structural regressions (an accidental
write-per-reply, a lost pipelining batch), which cost integer
factors, not percents.

Like the other mp guards, this one needs hardware to say anything:
with fewer than 4 usable CPUs the event loop, client threads, and
worker processes time-slice one core and the measurement is of the
scheduler, so the test skips.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.fig08_native import usable_cpus
from repro.service.loadgen import find_scenario, run_scenario
from repro.traces.synthetic import zipf_trace

RESULTS_PATH = Path(__file__).parent.parent / "results" / "BENCH_service.json"

MIN_CPUS = 4
THROUGHPUT_FLOOR = 0.5

# The row `make loadgen` records for the socket matrix over mp+shm:
# resp frontend, 2 connections (driver threads), depth-16 pipelining,
# 4 worker processes.
BASELINE_AXES = dict(
    shards=4, threads=2, backend="mp", transport="shm",
    frontend="resp", connections=2, pipeline_depth=16,
)


@pytest.mark.perf
@pytest.mark.skipif(
    usable_cpus() < MIN_CPUS,
    reason=f"needs >= {MIN_CPUS} usable CPUs to measure the socket path "
           f"(host grants {usable_cpus()})",
)
def test_socket_loadgen_reaches_recorded_shm_floor():
    if not RESULTS_PATH.exists():
        pytest.skip("no recorded baseline; run `make loadgen` first")
    report = json.loads(RESULTS_PATH.read_text())
    if report.get("schema", 0) < 4:
        pytest.skip("recorded baseline predates socket rows; "
                    "rerun `make loadgen`")
    baseline = find_scenario(report, **BASELINE_AXES)
    if baseline is None:
        pytest.skip("recorded report has no resp/mp+shm socket row; "
                    "rerun `make loadgen`")

    cfg = report["config"]
    trace = zipf_trace(
        num_objects=cfg["num_objects"],
        num_requests=cfg["num_requests"],
        alpha=cfg["alpha"],
        seed=cfg["seed"],
    )
    live = run_scenario(
        trace,
        capacity=cfg["capacity"],
        policy=cfg["policy"],
        num_shards=BASELINE_AXES["shards"],
        backend="mp",
        transport="shm",
        frontend="resp",
        connections=BASELINE_AXES["connections"],
        pipeline_depth=BASELINE_AXES["pipeline_depth"],
    )
    ratio = live["ops_per_sec"] / baseline["ops_per_sec"]
    assert ratio >= THROUGHPUT_FLOOR, (
        f"socket loadgen over mp+shm reached only {ratio:.2f}x the "
        f"recorded baseline ({live['ops_per_sec']:,.0f} vs "
        f"{baseline['ops_per_sec']:,.0f} ops/s) on a host with "
        f"{usable_cpus()} usable CPUs "
        f"(affinity {sorted(os.sched_getaffinity(0))})"
    )
