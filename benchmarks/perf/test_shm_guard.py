"""Perf guard for the shared-memory transport.

Marked ``perf`` and excluded from tier-1 (see pyproject addopts); run
via ``pytest benchmarks/perf -m perf``.  Compares a live shm
``MPCacheService`` run against the recorded pipe-transport mp row in
``benchmarks/results/BENCH_service.json`` (regenerate with ``make
loadgen``) and enforces the PR's headline claim: at ``batch_size=1``,
where every operation pays a full round-trip, shared-memory rings
clear 1.5x the pipe transport's throughput.

batch_size=1 is deliberate — it is the worst case for pipe (one
pickle + two syscalls per op) and the case the shm rings were built
for; batching amortizes the pipe's cost and narrows the gap, which is
the frontier experiment's story, not this guard's.

Like the mp scaling guard, this one needs hardware to say anything:
with fewer than 4 usable CPUs the parent and workers time-slice a
core and the spin/yield wait loops measure the scheduler, not the
transport, so the test skips (and shm deliberately skips its hot-spin
phase on 1-CPU hosts).
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.fig08_native import usable_cpus
from repro.service.loadgen import find_scenario, run_scenario
from repro.traces.synthetic import zipf_trace

RESULTS_PATH = Path(__file__).parent.parent / "results" / "BENCH_service.json"

MIN_CPUS = 4
SPEEDUP_FLOOR = 1.5


@pytest.mark.perf
@pytest.mark.skipif(
    usable_cpus() < MIN_CPUS,
    reason=f"needs >= {MIN_CPUS} usable CPUs to measure transport cost "
           f"(host grants {usable_cpus()})",
)
def test_shm_beats_recorded_pipe_at_batch_one():
    if not RESULTS_PATH.exists():
        pytest.skip("no recorded baseline; run `make loadgen` first")
    report = json.loads(RESULTS_PATH.read_text())
    if report.get("schema", 0) < 3:
        pytest.skip("recorded baseline predates transport rows; "
                    "rerun `make loadgen`")
    baseline = find_scenario(
        report, shards=4, threads=1, backend="mp",
        batch_size=1, transport="pipe",
    )
    if baseline is None:
        pytest.skip("recorded report has no 4-worker batch-1 pipe row; "
                    "rerun `make loadgen`")

    cfg = report["config"]
    trace = zipf_trace(
        num_objects=cfg["num_objects"],
        num_requests=cfg["num_requests"],
        alpha=cfg["alpha"],
        seed=cfg["seed"],
    )
    live = run_scenario(
        trace,
        capacity=cfg["capacity"],
        num_shards=4,
        num_threads=1,
        policy=cfg["policy"],
        backend="mp",
        batch_size=1,
        transport="shm",
    )
    speedup = live["ops_per_sec"] / baseline["ops_per_sec"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"shm transport is only {speedup:.2f}x the recorded pipe "
        f"baseline at batch_size=1 ({live['ops_per_sec']:,.0f} vs "
        f"{baseline['ops_per_sec']:,.0f} ops/s) on a host with "
        f"{usable_cpus()} usable CPUs "
        f"(affinity {sorted(os.sched_getaffinity(0))})"
    )
