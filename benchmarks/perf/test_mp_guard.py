"""Native-scaling perf guard for the process-per-shard backend.

Marked ``perf`` and excluded from tier-1 (see pyproject addopts); run
via ``pytest benchmarks/perf -m perf``.  Compares a live 4-worker
``MPCacheService`` run against the recorded 1-worker mp baseline in
``benchmarks/results/BENCH_service.json`` (regenerate with ``make
loadgen``) and enforces the PR's headline claim: with real cores,
process-per-shard with batching clears 2x the single-worker
throughput at 4 workers.

The guard needs hardware to say anything: on a host granting fewer
than 4 usable CPUs the workers time-slice one core and the "scaling"
measured would be scheduler noise, so the test skips (the experiment
table in ``fig08_throughput_native.txt`` stamps the same cpu count
for the same reason).
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.fig08_native import usable_cpus
from repro.service.loadgen import find_scenario, run_scenario
from repro.traces.synthetic import zipf_trace

RESULTS_PATH = Path(__file__).parent.parent / "results" / "BENCH_service.json"

MIN_CPUS = 4
SPEEDUP_FLOOR = 2.0


@pytest.mark.perf
@pytest.mark.skipif(
    usable_cpus() < MIN_CPUS,
    reason=f"needs >= {MIN_CPUS} usable CPUs to measure native scaling "
           f"(host grants {usable_cpus()})",
)
def test_mp_four_workers_doubles_recorded_single_worker():
    if not RESULTS_PATH.exists():
        pytest.skip("no recorded baseline; run `make loadgen` first")
    report = json.loads(RESULTS_PATH.read_text())
    if report.get("schema", 0) < 2:
        pytest.skip("recorded baseline predates mp rows; rerun `make loadgen`")
    baseline = find_scenario(report, shards=1, threads=1, backend="mp")
    if baseline is None:
        pytest.skip("recorded report has no 1-worker mp row; rerun `make loadgen`")

    cfg = report["config"]
    trace = zipf_trace(
        num_objects=cfg["num_objects"],
        num_requests=cfg["num_requests"],
        alpha=cfg["alpha"],
        seed=cfg["seed"],
    )
    live = run_scenario(
        trace,
        capacity=cfg["capacity"],
        num_shards=4,
        num_threads=1,
        policy=cfg["policy"],
        backend="mp",
        batch_size=baseline.get("batch_size", 1),
    )
    speedup = live["ops_per_sec"] / baseline["ops_per_sec"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"4-worker mp backend is only {speedup:.2f}x the recorded "
        f"1-worker baseline ({live['ops_per_sec']:,.0f} vs "
        f"{baseline['ops_per_sec']:,.0f} ops/s) on a host with "
        f"{usable_cpus()} usable CPUs "
        f"(affinity {sorted(os.sched_getaffinity(0))})"
    )
