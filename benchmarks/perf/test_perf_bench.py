"""Full-size perf benchmark: reference vs. fast policies, 1M requests.

Marked ``perf`` and excluded from tier-1 (see pyproject addopts); run
via ``make perf`` or ``pytest benchmarks/perf -m perf``.  Writes the
canonical ``benchmarks/results/BENCH_perf.json`` and enforces the
repo's headline perf claim: fast S3-FIFO sustains at least 3x the
reference's requests/second on a 1M-request Zipf(1.0) trace at 10%
cache size.
"""

import json
from pathlib import Path

import pytest

from repro.perf.bench import run_perf_bench, write_report

RESULTS_PATH = Path(__file__).parent.parent / "results" / "BENCH_perf.json"


@pytest.mark.perf
def test_perf_bench_full():
    report = run_perf_bench(
        num_objects=100_000,
        num_requests=1_000_000,
        alpha=1.0,
        cache_ratio=0.1,
        seed=42,
    )
    # The vector guard (test_vector_guard.py) owns the "vector"
    # section; keep whichever run wrote it last, regardless of order.
    if RESULTS_PATH.is_file():
        try:
            prior = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            prior = {}
        if isinstance(prior, dict) and "vector" in prior:
            report["vector"] = prior["vector"]
    write_report(report, RESULTS_PATH)
    by_name = {
        (row["policy"], row["impl"]): row for row in report["results"]
    }
    ref = by_name[("s3fifo", "reference")]
    fast = by_name[("s3fifo-fast", "fast")]
    assert fast["miss_ratio"] == ref["miss_ratio"]
    speedup = fast["requests_per_sec"] / ref["requests_per_sec"]
    assert speedup >= 3.0, (
        f"s3fifo-fast is only {speedup:.2f}x the reference "
        f"({fast['requests_per_sec']:,} vs {ref['requests_per_sec']:,} req/s)"
    )
    # Every fast twin must at least beat its reference.
    for name, ratio in report["speedups"].items():
        assert ratio > 1.0, f"{name} slower than reference ({ratio}x)"
