"""Full-size single-pass MRC perf guard, 1M requests at 8 sizes.

Marked ``perf``/``mrc`` and excluded from tier-1 (see pyproject
addopts); run via ``make mrc-fast`` or ``pytest benchmarks/perf -m
perf``.  Enforces the PR's headline claim: the single-pass multi-size
FIFO engine computes all 8 cache sizes of a 1M-request Zipf(1.0) MRC
at least 3x faster than re-simulating per size — with the *fast twin*
as the baseline, not the reference policy, so the bar is the honest
one.  Exactness is asserted on the same run.
"""

import time

import pytest

from repro.cache.registry import create_policy
from repro.sim.multisim import fifo_multisim
from repro.sim.simulator import simulate
from repro.traces.compiled import compile_trace
from repro.traces.synthetic import zipf_trace

SIZE_FRACTIONS = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5)


@pytest.mark.perf
@pytest.mark.mrc
def test_single_pass_mrc_speedup():
    trace = zipf_trace(
        num_objects=100_000, num_requests=1_000_000, alpha=1.0, seed=42
    )
    ct = compile_trace(trace, name="zipf-1M")
    sizes = sorted(
        {max(1, int(ct.num_objects * f)) for f in SIZE_FRACTIONS}
    )
    assert len(sizes) == 8

    start = time.perf_counter()
    result = fifo_multisim(ct, sizes)
    t_single = time.perf_counter() - start

    start = time.perf_counter()
    per_size = []
    for size in sizes:
        cache = create_policy("fifo-fast", capacity=size)
        per_size.append(simulate(cache, ct))
    t_per_size = time.perf_counter() - start

    for r, misses in zip(per_size, result.misses):
        assert r.misses == misses  # exactness rides along with the race
    speedup = t_per_size / t_single
    assert speedup >= 3.0, (
        f"single-pass is only {speedup:.2f}x per-size re-simulation "
        f"({t_single:.2f}s vs {t_per_size:.2f}s at {len(sizes)} sizes)"
    )
