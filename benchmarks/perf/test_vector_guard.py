"""Vector-engine perf guard: NumPy batch engine vs. scalar fast twins.

Marked ``perf`` and excluded from tier-1 (see pyproject addopts); run
via ``make perf`` or ``pytest benchmarks/perf -m perf``.  Enforces the
vectorized hit-run claim: on a 1M-request high-skew Zipf trace whose
hit ratio exceeds 0.9, the vector engine (:mod:`repro.sim.vector`)
sustains at least 2.5x ``fifo-fast`` and 2x ``s3fifo-fast`` — the
scalar compiled-trace paths that were themselves the previous perf
tentpole.  Both engines are timed best-of-3 because single-shot walls
on small shared machines carry more noise than the asserted margin.

Merges its measurements into ``benchmarks/results/BENCH_perf.json``
as the ``"vector"`` section (test_perf_bench.py owns the rest).
"""

import json
from pathlib import Path

import pytest

from repro.perf.bench import (
    VECTOR_BENCH_TARGETS,
    env_block,
    run_vector_bench,
    write_report,
)

RESULTS_PATH = Path(__file__).parent.parent / "results" / "BENCH_perf.json"


@pytest.mark.perf
def test_vector_engine_guard():
    section = run_vector_bench(
        num_objects=100_000,
        num_requests=1_000_000,
        alpha=1.4,
        cache_ratio=0.1,
        seed=42,
        repeats=3,
    )

    # Attach to the canonical report if the full bench already wrote
    # one; otherwise start a stub so the section is never lost.
    if RESULTS_PATH.is_file():
        try:
            report = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            report = {}
    else:
        report = {}
    if not isinstance(report, dict) or "results" not in report:
        report = {"env": env_block()}
    report["vector"] = section
    write_report(report, RESULTS_PATH)

    # The workload must actually exercise lazy promotion: the guard
    # is a claim about hit-run dominance, not about miss-heavy traces.
    for name, _ in VECTOR_BENCH_TARGETS:
        hit = section["hit_ratios"][name]
        assert hit >= 0.9, (
            f"{name} guard workload hit ratio {hit:.4f} < 0.9 — "
            "the acceptance trace no longer stresses hit runs"
        )

    for name, target in VECTOR_BENCH_TARGETS:
        speedup = section["speedups"][name]
        assert speedup >= target, (
            f"vector engine is only {speedup:.2f}x {name} "
            f"(target {target:.1f}x); walls: "
            f"{[r['all_walls_s'] for r in section['results'] if r['policy'] == name]}"
        )
