"""Bench: regenerate Fig. 8 (throughput scaling with CPU cores).

Reproduced via the concurrency cost model (see DESIGN.md substitution
2): strict LRU flat, optimized LRU plateaus by ~2-4 cores, TinyLFU/2Q
below LRU, Segcache and S3-FIFO near-linear, S3-FIFO >6x optimized LRU
at 16 threads.
"""

from conftest import run_once

from repro.experiments import fig08_throughput


def test_fig08_throughput_model(benchmark, save_table):
    rows = run_once(benchmark, fig08_throughput.run)
    table = fig08_throughput.format_table(rows)
    save_table("fig08_throughput_scaling", table)
    print("\n" + table)
    for cache in ("large", "small"):
        speedup = fig08_throughput.speedup_at(
            rows, cache, "s3fifo", "lru-optimized", 16
        )
        print(f"{cache}: s3fifo / optimized-LRU @16 threads = {speedup:.1f}x")
        assert speedup > 6.0
        strict = next(
            r for r in rows
            if r["cache"] == cache and r["policy"] == "lru-strict"
        )
        assert strict["t16"] < 2 * strict["t1"]
        s3 = next(
            r for r in rows if r["cache"] == cache and r["policy"] == "s3fifo"
        )
        assert s3["t16"] > 10 * s3["t1"]


def test_fig08_discrete_event_validation(benchmark, save_table):
    """The DES model agrees with the analytic curves."""
    rows = run_once(
        benchmark,
        lambda: fig08_throughput.run(use_simulation=True, requests=60_000),
    )
    table = fig08_throughput.format_table(rows)
    save_table("fig08_throughput_simulated", table)
    print("\n" + table)
    assert fig08_throughput.speedup_at(
        rows, "large", "s3fifo", "lru-optimized", 16
    ) > 5.0
