"""Bench: cluster availability under node churn.

The paper's evaluation leaned on a fault-tolerant distributed platform;
the cluster tier reproduces the client-visible consequences on one
machine: a WORKER_CRASH mid-run with R=2 must cost availability nothing
(failovers, not errors), and a restarted node is refilled by an
explicit rebalance whose copy cost stays near the consistent-hashing
ideal of R/(N+1).
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments.cluster_churn import (
    NUM_NODES,
    format_table,
    format_vnode_sweep,
    run,
    vnode_sweep,
)


def test_cluster_churn(benchmark, save_table):
    def build():
        return run(scale=BENCH_SCALE, seed=0), vnode_sweep()

    rows, sweep = run_once(benchmark, build)
    table = format_table(rows) + "\n\n" + format_vnode_sweep(sweep)
    save_table("cluster_churn", table)
    print("\n" + table)

    phases = [r["phase"] for r in rows]
    assert phases[0] == "healthy"
    assert "degraded" in phases and "recovered" in phases
    # The crash is absorbed by replicas, not surfaced as errors: the
    # degraded windows keep serving (and fail over), then the restart
    # moves a bounded batch of keys back onto the empty node.
    assert all(r["ops"] > 0 for r in rows)
    assert sum(r["failovers"] for r in rows) > 0
    assert sum(r["rebalanced"] for r in rows) > 0
    degraded = [r for r in rows if r["phase"] == "degraded"]
    assert all(r["nodes_up"] == NUM_NODES - 1 for r in degraded)
    # Owner-set movement on a 3->4 join stays near the R/(N+1) ideal.
    for row in sweep:
        assert abs(row["moved"] - row["ideal"]) < 0.15
