"""Bench: regenerate Fig. 7 (mean miss-ratio reduction per dataset).

Paper: S3-FIFO best on 10/14 datasets (large cache) and top-3 on 13;
no other algorithm best on more than 3.
"""

from conftest import BENCH_SCALE, BENCH_TRACES_PER_DATASET, run_once

from repro.experiments import fig07_missratio_by_dataset


def test_fig07_missratio_by_dataset(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: fig07_missratio_by_dataset.run(
            scale=BENCH_SCALE,
            traces_per_dataset=BENCH_TRACES_PER_DATASET,
            processes=1,
        ),
    )
    table = fig07_missratio_by_dataset.format_table(rows)
    save_table("fig07_missratio_by_dataset", table)
    print("\n" + table)
    assert len(rows) == 14
    s3_wins = fig07_missratio_by_dataset.wins(rows, "s3fifo")
    s3_top3 = fig07_missratio_by_dataset.top_k_count(rows, "s3fifo", k=3)
    print(f"\ns3fifo: best on {s3_wins}/14 datasets, top-3 on {s3_top3}/14")
    # Shape: wins on a majority, top-3 nearly everywhere.
    assert s3_wins >= 7
    assert s3_top3 >= 12
    # No competitor should win more datasets than s3fifo.
    for other in ("tinylfu", "lirs", "arc", "twoq"):
        assert fig07_missratio_by_dataset.wins(rows, other) <= s3_wins
