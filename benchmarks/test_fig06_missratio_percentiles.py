"""Bench: regenerate Fig. 6 (miss-ratio reduction percentiles).

The paper's headline: S3-FIFO has the largest reduction vs FIFO across
(almost) all percentiles at both cache sizes.
"""

from conftest import BENCH_SCALE, BENCH_TRACES_PER_DATASET, run_once

from repro.experiments import fig06_missratio_percentiles
from repro.experiments.common import FIG6_POLICIES


def test_fig06_missratio_percentiles(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: fig06_missratio_percentiles.run(
            scale=BENCH_SCALE,
            traces_per_dataset=BENCH_TRACES_PER_DATASET,
            processes=1,
        ),
    )
    table = fig06_missratio_percentiles.format_table(rows)
    save_table("fig06_missratio_percentiles", table)
    print("\n" + table)

    for cache in ("large", "small"):
        means = {
            r["policy"]: r["mean"] for r in rows if r["cache"] == cache
        }
        medians = {
            r["policy"]: r["p50"] for r in rows if r["cache"] == cache
        }
        assert set(means) == set(FIG6_POLICIES)
        # Headline: best mean and median reduction at both sizes.
        assert means["s3fifo"] == max(means.values()), cache
        assert medians["s3fifo"] >= max(medians.values()) - 0.01, cache
        # Weak baselines behave as in the paper.
        assert means["s3fifo"] > means["lru"]
        assert means["s3fifo"] > means["clock"]
        assert means["fifomerge"] < 0.05  # ~FIFO, not scan-resistant
