"""Bench: regenerate Fig. 2 (one-hit-wonder ratio vs sequence length)."""

from conftest import run_once

from repro.experiments import fig02_onehit_curves


def test_fig02_onehit_curves(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: fig02_onehit_curves.run(
            num_objects=4000, num_requests=80_000, num_samples=6
        ),
    )
    table = fig02_onehit_curves.format_table(rows)
    save_table("fig02_onehit_curves", table)
    print("\n" + table)
    # Shape: every curve decreases with sequence length.
    for trace in ("zipf-0.6", "zipf-1.2", "msr", "twitter"):
        assert fig02_onehit_curves.monotonically_decreasing(
            rows, trace, tolerance=0.08
        ), trace
    # Shape: higher skew -> lower curve at the same fraction.
    at = lambda t, f: next(
        r["ohw_ratio"] for r in rows if r["trace"] == t and r["fraction"] == f
    )
    assert at("zipf-1.2", 0.1) < at("zipf-0.6", 0.1)
