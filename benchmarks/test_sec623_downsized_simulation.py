"""Bench: Section 6.2.3 — downsized simulations with spatial sampling.

The paper points operators who must tune per-workload parameters to
SHARDS-style miniature simulations.  This benchmark validates the
machinery: the sampled miss-ratio curve tracks the exact LRU curve,
and the same miniature-simulation apparatus reproduces the S3-FIFO
small-queue-size choice at a fraction of the cost.
"""

from conftest import run_once

from repro.sim.mrc import lru_mrc, mrc_error, sampled_mrc
from repro.traces.synthetic import zipf_trace


def test_sec623_downsized_simulation(benchmark, save_table):
    trace = zipf_trace(20_000, 150_000, alpha=0.9, seed=0)
    sizes = [500, 2000, 8000]

    def build():
        exact = lru_mrc(trace, sizes=sizes)
        estimate = sampled_mrc(
            "lru", trace, sizes=sizes, rate=0.15, seed=0, ensembles=3
        )
        mini_s3 = {
            ratio: sampled_mrc(
                "s3fifo", trace, sizes=[2000], rate=0.15, ensembles=2,
                small_ratio=ratio,
            ).miss_ratios[0]
            for ratio in (0.01, 0.1, 0.4)
        }
        return exact, estimate, mini_s3

    exact, estimate, mini_s3 = run_once(benchmark, build)
    lines = ["Sec. 6.2.3 — downsized simulation accuracy",
             f"exact LRU MRC    : {exact}",
             f"sampled LRU MRC  : {estimate}",
             f"mean abs error   : {mrc_error(estimate, exact):.4f}",
             "mini-sim S3-FIFO miss ratio @2000 by S size: "
             + ", ".join(f"{r:g}->{m:.3f}" for r, m in mini_s3.items())]
    table = "\n".join(lines)
    save_table("sec623_downsized_simulation", table)
    print("\n" + table)

    assert mrc_error(estimate, exact) < 0.08
    # The miniature simulation reproduces Fig. 11's shape: tiny and
    # huge S are both no better than the 10% default.
    assert mini_s3[0.1] <= mini_s3[0.4] + 0.01
