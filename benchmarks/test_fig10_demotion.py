"""Bench: regenerate Fig. 10 (quick demotion speed and precision)."""

from conftest import run_once

from repro.experiments import fig10_demotion


def test_fig10_demotion(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: fig10_demotion.run(
            s_sizes=(0.4, 0.2, 0.1, 0.05, 0.02), scale=0.4
        ),
    )
    table = fig10_demotion.format_table(rows)
    save_table("fig10_demotion", table)
    print("\n" + table)

    for dataset in ("twitter", "msr"):
        for cache in ("large", "small"):
            s3 = {
                r["s_size"]: r
                for r in rows
                if r["dataset"] == dataset
                and r["cache"] == cache
                and r["policy"] == "s3fifo"
                and r["s_size"] is not None
            }
            # Monotone speed: smaller S always demotes faster.
            sizes = sorted(s3)
            speeds = [s3[s]["speed"] for s in sizes]
            assert all(
                speeds[i] >= speeds[i + 1] * 0.9 for i in range(len(speeds) - 1)
            ), (dataset, cache, speeds)
            # Demotion is faster than LRU eviction for small S.
            assert s3[sizes[0]]["speed"] > 1.0, (dataset, cache)
