"""Bench: regenerate Fig. 3 (one-hit-wonder distribution across traces).

Paper medians: 26% (full), 38% (50% of objects), 72% (10%), 78% (1%).
Our stand-ins reproduce the steep rise as sequences shrink.
"""

from conftest import BENCH_SCALE, BENCH_TRACES_PER_DATASET, run_once

from repro.experiments import fig03_onehit_distribution


def test_fig03_onehit_distribution(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: fig03_onehit_distribution.run(
            scale=BENCH_SCALE,
            traces_per_dataset=BENCH_TRACES_PER_DATASET,
            num_samples=4,
        ),
    )
    table = fig03_onehit_distribution.format_table(rows)
    save_table("fig03_onehit_distribution", table)
    print("\n" + table)
    by_frac = {r["fraction"]: r for r in rows}
    # The paper's monotone shape (medians): 1% > 10% > 50% > full.
    assert by_frac[0.01]["median"] >= by_frac[0.1]["median"] - 0.05
    assert by_frac[0.1]["median"] > by_frac[0.5]["median"]
    assert by_frac[0.5]["median"] > by_frac[1.0]["median"]
    # 10%-of-objects sequences land in the paper's high-ohw regime.
    assert by_frac[0.1]["median"] > 0.55
