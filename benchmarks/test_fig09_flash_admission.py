"""Bench: regenerate Fig. 9 (flash admission: write bytes + miss ratio).

Paper: admission slashes writes; probabilistic and Flashield trade
miss ratio for it; the S3-FIFO small-queue filter reduces *both*, and
the ML scheme needs 10% DRAM to come close while the filter works even
at 0.1%.
"""

from conftest import run_once

from repro.experiments import fig09_flash_admission


def test_fig09_flash_admission(benchmark, save_table):
    rows = run_once(
        benchmark, lambda: fig09_flash_admission.run(scale=0.4)
    )
    table = fig09_flash_admission.format_table(rows)
    save_table("fig09_flash_admission", table)
    print("\n" + table)
    for dataset in ("wikimedia", "tencent_photo"):
        sub = [r for r in rows if r["trace"] == dataset]
        writes = {r["scheme"]: r["normalized_writes"] for r in sub}
        misses = {r["scheme"]: r["miss_ratio"] for r in sub}
        baseline_writes = writes["fifo (no admission)"]
        # Every admission policy reduces write bytes vs no admission.
        for scheme, value in writes.items():
            if scheme != "fifo (no admission)":
                assert value < baseline_writes, (dataset, scheme)
        # The s3fifo filter's best point beats probabilistic on BOTH axes.
        s3_schemes = [s for s in writes if s.startswith("s3fifo")]
        best_s3 = min(s3_schemes, key=lambda s: misses[s])
        assert misses[best_s3] <= misses["probabilistic-0.2"] + 0.02, dataset
        assert writes[best_s3] < baseline_writes, dataset
