"""Bench: single-pass multi-size MRC vs per-size re-simulation."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import mrc_fast


def test_mrc_fast(benchmark, save_table):
    rows = run_once(benchmark, lambda: mrc_fast.run(scale=BENCH_SCALE))
    table = mrc_fast.format_table(rows)
    save_table("mrc_fast", table)
    print("\n" + table)
    # Every row re-verified its per-size miss counts against the
    # single pass; the table must say so.
    assert all(row["exact"] == "yes" for row in rows)
    # The single pass must win on every dataset for plain FIFO, even
    # against the array-backed fast twin re-simulating per size.
    fifo_rows = [row for row in rows if row["policy"] == "fifo"]
    assert fifo_rows
    assert all(row["speedup"] > 1.0 for row in fifo_rows)
