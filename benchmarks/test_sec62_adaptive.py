"""Bench: Section 6.2.2 — static S3-FIFO vs adaptive S3-FIFO-D.

Paper: the static variant matches or beats the adaptive one on most
traces; adaptation only pays on adversarial workloads.
"""

from conftest import BENCH_SCALE, BENCH_TRACES_PER_DATASET, run_once

from repro.experiments import sec62_adaptive


def test_sec62_adaptive(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: sec62_adaptive.run(
            scale=BENCH_SCALE,
            traces_per_dataset=BENCH_TRACES_PER_DATASET,
            processes=1,
        ),
    )
    table = sec62_adaptive.format_table(rows)
    save_table("sec62_adaptive", table)
    print("\n" + table)
    summary = sec62_adaptive.summarize(rows)
    print(f"\nsummary: {summary}")
    # The adaptive variant wins on only a small fraction of normal traces.
    assert summary["d_win_fraction"] < 0.5
    # On the adversarial trace, adaptation clearly helps.
    assert summary["adversarial_gain"] is not None
    assert summary["adversarial_gain"] > 0.05
    # Normal-trace deltas are small either way.
    normal = [r for r in rows if not r["trace"].startswith("adversarial")]
    assert all(abs(r["d_gain"]) < 0.25 for r in normal)
