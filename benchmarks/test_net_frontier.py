"""Bench: the throughput-vs-hit-ratio frontier through the socket path.

Regenerates the ``repro.experiments.net_frontier`` sweep: the frontier
trace replayed in-process and through the network front-end (RESP with
and without pipelining, memcached text).  The assertions are shape
claims, not speed claims — hit ratios must rise with capacity within a
series, the wire protocol must not move the hit-ratio axis, and the
two structural throughput facts must hold in either direction of the
hardware lottery: going over a socket costs throughput, and
pipelining buys part of it back.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments.net_frontier import (
    DEFAULT_RATIOS,
    DEFAULT_SERIES,
    format_chart,
    format_table,
    run,
)


def test_net_frontier(benchmark, save_table):
    def build():
        return run(scale=BENCH_SCALE, seed=42)

    rows = run_once(benchmark, build)
    table = format_table(rows) + "\n\n" + format_chart(rows)
    save_table("net_frontier", table)
    print("\n" + table)

    assert len(rows) == len(DEFAULT_SERIES) * len(DEFAULT_RATIOS)
    assert all(r["kops"] > 0 for r in rows)
    by_series = {}
    for r in rows:
        by_series.setdefault(r["series"], []).append(r)
    for series_rows in by_series.values():
        ratios = [r["hit_ratio"] for r in series_rows]
        # Bigger cache, same trace: the frontier walks right.
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0]
    # The wire protocol cannot move a point's hit ratio: same trace,
    # same policy, same capacity.  Connection interleaving wiggles the
    # request order slightly (like thread slicing in-process), so the
    # pin is a tight band rather than exact equality.
    for i in range(len(DEFAULT_RATIOS)):
        hits = [series_rows[i]["hit_ratio"]
                for series_rows in by_series.values()]
        assert max(hits) - min(hits) < 0.03, (
            f"hit ratios diverged across series at ratio index {i}: {hits}"
        )

    def mean_kops(label):
        series_rows = by_series[label]
        return sum(r["kops"] for r in series_rows) / len(series_rows)

    # The network tax is real: one command per round-trip cannot match
    # an in-process call...
    assert mean_kops("inproc") > mean_kops("resp p1")
    # ...and pipelining refunds part of it.
    assert mean_kops("resp p16") > mean_kops("resp p1")
