"""Bench: the Section 5.2 adversarial two-access workload.

Paper: when every object is requested exactly twice and the second
request falls outside the small queue, S3-FIFO (and the other
space-partitioned policies: TinyLFU, LIRS, 2Q) miss the second
request, while an unpartitioned FIFO of the same total size can hit it.
"""

from conftest import run_once

from repro.experiments import sec52_adversarial


def test_sec52_adversarial(benchmark, save_table):
    rows = run_once(benchmark, sec52_adversarial.run)
    table = sec52_adversarial.format_table(rows)
    save_table("sec52_adversarial", table)
    print("\n" + table)
    by = {(r["gap"], r["policy"]): r["miss_ratio"] for r in rows}

    # Gap far below the cache size: everyone serves the second access.
    assert by[(200, "fifo")] <= 0.55
    assert by[(200, "s3fifo")] <= 0.55

    # Gap between S and the cache size: partitioned policies lose.
    gap = 700
    assert by[(gap, "fifo")] < by[(gap, "s3fifo")]
    assert by[(gap, "fifo")] < by[(gap, "tinylfu")]
    assert by[(gap, "fifo")] < by[(gap, "lirs")]
    assert by[(gap, "fifo")] < by[(gap, "twoq")]

    # Gap beyond the cache: nobody can hit (except near-oracle luck).
    assert by[(5000, "fifo")] > 0.95
    assert by[(5000, "s3fifo")] > 0.95
