"""Bench: regenerate Fig. 1 (the toy one-hit-wonder example)."""

from conftest import run_once

from repro.experiments import fig01_toy


def test_fig01_toy(benchmark, save_table):
    rows = run_once(benchmark, fig01_toy.run)
    table = fig01_toy.format_table(rows)
    save_table("fig01_toy", table)
    print("\n" + table)
    by_window = {(r["start"], r["end"]): r["ratio"] for r in rows}
    # Exact paper values.
    assert abs(by_window[(1, 17)] - 0.20) < 1e-9
    assert abs(by_window[(1, 7)] - 0.50) < 1e-9
    assert abs(by_window[(1, 4)] - 2 / 3) < 1e-9
