"""Microbenchmarks: single-thread simulation throughput per policy.

This is the one benchmark file that uses pytest-benchmark's repeated
timing in its natural role — how many requests/second each *Python*
policy implementation sustains in the simulator.  (The paper's Fig. 8
multicore claim is reproduced by the cost model in
``test_fig08_throughput_scaling.py``; these numbers only compare the
constant factors of our implementations.)
"""

import pytest

from repro.cache.registry import create_policy
from repro.sim.request import Request
from repro.traces.synthetic import zipf_trace

TRACE = zipf_trace(num_objects=2000, num_requests=30_000, alpha=1.0, seed=0)

POLICIES = ["fifo", "lru", "clock", "sieve", "s3fifo", "arc", "tinylfu", "lirs"]


@pytest.mark.parametrize("policy_name", POLICIES)
def test_policy_throughput(benchmark, policy_name):
    def run():
        cache = create_policy(policy_name, capacity=200)
        for key in TRACE:
            cache.request(Request(key))
        return cache.stats.miss_ratio

    miss_ratio = benchmark.pedantic(run, rounds=3, iterations=1)
    assert 0.0 < miss_ratio < 1.0
