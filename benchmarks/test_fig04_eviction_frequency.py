"""Bench: regenerate Fig. 4 (frequency of objects at eviction).

Paper: at a cache of 10% of footprint, 26%/24% of LRU/Belady evictions
on the Twitter trace had no reuse; 82%/68% on the MSR trace.
"""

from conftest import run_once

from repro.experiments import fig04_eviction_frequency


def test_fig04_eviction_frequency(benchmark, save_table):
    rows = run_once(
        benchmark, lambda: fig04_eviction_frequency.run(scale=0.5)
    )
    table = fig04_eviction_frequency.format_table(rows)
    save_table("fig04_eviction_frequency", table)
    print("\n" + table)
    freq0 = {(r["dataset"], r["policy"]): r["freq0"] for r in rows}
    # MSR-like: most evictions are one-hit wonders.
    assert freq0[("msr", "lru")] > 0.5
    assert freq0[("msr", "belady")] > 0.3
    # Twitter-like is less extreme, matching the paper's ordering.
    assert freq0[("twitter", "lru")] < freq0[("msr", "lru")]
    # A large fraction of evicted objects had no reuse everywhere.
    assert all(v > 0.1 for v in freq0.values())
