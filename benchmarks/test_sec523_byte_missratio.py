"""Bench: Section 5.2.3 — byte miss ratio.

Paper: results are "not significantly different" from the request miss
ratio; S3-FIFO presents larger byte-miss-ratio reductions at almost
all percentiles.  Our stand-ins put S3-FIFO at/near the top of the
byte-denominated ranking, far above LRU/CLOCK/2Q.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import sec523_byte_missratio


def test_sec523_byte_missratio(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: sec523_byte_missratio.run(
            scale=BENCH_SCALE,
            traces_per_dataset=1,
            processes=1,
        ),
    )
    table = sec523_byte_missratio.format_table(rows)
    save_table("sec523_byte_missratio", table)
    print("\n" + table)
    means = {r["policy"]: r["mean"] for r in rows}
    # S3-FIFO within a whisker of the best mean reduction...
    assert means["s3fifo"] >= max(means.values()) - 0.03
    # ...and clearly ahead of the classic baselines.
    assert means["s3fifo"] > means["lru"]
    assert means["s3fifo"] > means["clock"]
    assert means["s3fifo"] > means["twoq"]
    assert all(v > 0 for v in means.values())
