"""Bench: ablations of S3-FIFO's design constants (DESIGN.md Sec. 4).

Ghost-queue size, frequency-counter width, and the move-to-main
threshold — the knobs Algorithm 1 fixes — each swept against the
paper's defaults.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import ablations


def test_ablation_s3fifo_constants(benchmark, save_table):
    rows = run_once(
        benchmark,
        lambda: ablations.run(
            scale=BENCH_SCALE,
            traces_per_dataset=1,
            processes=1,
        ),
    )
    table = ablations.format_table(rows)
    save_table("ablation_s3fifo", table)
    print("\n" + table)
    by = {r["ablation"]: r["mean_reduction"] for r in rows}
    default = by["default (ghost=|M|, cap=3, thr=2)"]
    # Every configuration still beats FIFO on average.
    assert all(v > 0 for v in by.values())
    # The paper's defaults are within noise of the best configuration.
    assert default >= max(by.values()) - 0.04
    # A starved ghost queue costs efficiency (quick-demotion needs it).
    assert by["ghost=0.1x|M|"] <= default + 0.01
